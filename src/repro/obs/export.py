"""Trace export (Chrome ``trace_event`` JSON) and offline aggregation.

The buffered events (:mod:`repro.obs.trace`) keep timestamps in
wall-clock *seconds* and identify processes by a ``lane`` string
(``host:pid``).  :func:`write_chrome_trace` converts to the Chrome
format Perfetto / ``chrome://tracing`` load directly: timestamps in
microseconds, one synthetic integer ``pid`` per lane (with a ``ph='M'``
``process_name`` metadata record carrying the original label), so a
cluster run renders as one lane per worker process.

:func:`summarize_trace` is the offline half — it recovers what a
profiler would show without one attached: top kernels by *self* time
(child spans subtracted via per-thread nesting), hit-rate per cache
tier from the kernel spans' ``tier`` attribute, and per-worker
utilization / straggler breakdown from the job spans.  The ``trace
summary`` CLI prints :func:`describe_summary` over it.

Writes are atomic (temp file + ``os.replace``): a run killed mid-export
leaves either the previous trace or none — never a torn JSON file.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = [
    "write_chrome_trace",
    "load_trace",
    "summarize_trace",
    "summarize_events",
    "describe_summary",
]

#: Microseconds per second — Chrome trace timestamps are integer-ish µs.
_US = 1_000_000

#: The kernel-call cache tiers, in lookup order (for stable reporting).
TIERS = ("memo", "seed", "store", "remote", "computed", "bypass")


def _chrome_events(events) -> list[dict]:
    """Convert buffered events to Chrome ``trace_event`` records."""
    lanes: dict[str, int] = {}
    out: list[dict] = []
    for event in events:
        lane = str(event.get("lane", "?"))
        pid = lanes.get(lane)
        if pid is None:
            pid = lanes[lane] = len(lanes) + 1
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": lane},
                }
            )
        record = {
            "name": event["name"],
            "cat": event.get("cat", "span"),
            "ph": event["ph"],
            "ts": event["ts"] * _US,
            "pid": pid,
            "tid": event.get("tid", 0),
            "args": event.get("args", {}),
        }
        if event["ph"] == "X":
            record["dur"] = event.get("dur", 0.0) * _US
        elif event["ph"] == "i":
            record["s"] = "t"  # instant scope: thread
        out.append(record)
    return out


def write_chrome_trace(path: str, events) -> int:
    """Write *events* to *path* as Chrome trace JSON, atomically.

    Returns the number of trace events written (metadata records not
    counted).  An empty event list still writes a valid (empty) trace so
    downstream tooling never sees a missing file after a traced run.
    """
    records = _chrome_events(events)
    payload = {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".trace-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return sum(1 for r in records if r["ph"] != "M")


def load_trace(path: str) -> list[dict]:
    """Read a Chrome trace file back into its ``traceEvents`` list.

    Accepts both the object form written here and a bare JSON array
    (Chrome accepts either), so fixtures can use whichever reads best.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents list)")
    return [e for e in events if isinstance(e, dict)]


def _lane_names(events) -> dict:
    """Map synthetic pid → original lane label from metadata records."""
    names = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            label = event.get("args", {}).get("name")
            if label:
                names[event.get("pid")] = str(label)
    return names


def _self_times(spans) -> dict:
    """Per-span self time: duration minus time covered by nested spans.

    Spans nest per (pid, tid): sorted by start (ties broken longest
    first, so parents precede their children), a span whose interval
    lies inside the stack top is a child; its duration is charged to
    itself and subtracted from the parent.  Returns
    ``{id(span): self_us}``.
    """
    self_us = {id(s): float(s.get("dur", 0.0)) for s in spans}
    by_thread: dict = {}
    for s in spans:
        by_thread.setdefault((s.get("pid"), s.get("tid")), []).append(s)
    for group in by_thread.values():
        group.sort(key=lambda s: (s["ts"], -float(s.get("dur", 0.0))))
        stack: list[dict] = []
        for s in group:
            end = s["ts"] + float(s.get("dur", 0.0))
            while stack and s["ts"] >= stack[-1]["_end"] - 1e-9:
                stack.pop()
            if stack:
                self_us[id(stack[-1])] -= float(s.get("dur", 0.0))
            s["_end"] = end
            stack.append(s)
        for s in group:
            s.pop("_end", None)
    return self_us


def summarize_trace(events) -> dict:
    """Aggregate a loaded Chrome trace into a JSON-ready report.

    All durations in the report are **seconds** (the trace stores µs).
    """
    lane_names = _lane_names(events)
    spans = [
        e
        for e in events
        if e.get("ph") == "X" and isinstance(e.get("ts"), (int, float))
    ]
    instants = [e for e in events if e.get("ph") == "i"]
    self_us = _self_times(spans)

    starts = [s["ts"] for s in spans] + [i.get("ts", 0.0) for i in instants]
    ends = [s["ts"] + float(s.get("dur", 0.0)) for s in spans]
    t0 = min(starts) if starts else 0.0
    t1 = max(ends + starts) if (ends or starts) else 0.0
    wall = max(t1 - t0, 0.0) / _US

    # --- kernels: count / total / self time, tier hit attribution -----
    kernels: dict[str, dict] = {}
    tier_counts = {tier: 0 for tier in TIERS}
    for s in spans:
        if s.get("cat") != "kernel":
            continue
        name = s["name"].split(":", 1)[-1]
        entry = kernels.setdefault(
            name, {"count": 0, "total": 0.0, "self": 0.0, "tiers": {}}
        )
        entry["count"] += 1
        entry["total"] += float(s.get("dur", 0.0)) / _US
        entry["self"] += max(self_us[id(s)], 0.0) / _US
        tier = s.get("args", {}).get("tier")
        if tier:
            entry["tiers"][tier] = entry["tiers"].get(tier, 0) + 1
            if tier in tier_counts:
                tier_counts[tier] += 1
            else:
                tier_counts[tier] = 1
    kernel_calls = sum(tier_counts.values())
    tier_rates = {
        tier: (count / kernel_calls if kernel_calls else 0.0)
        for tier, count in tier_counts.items()
    }
    top_kernels = sorted(
        ({"kernel": k, **v} for k, v in kernels.items()),
        key=lambda e: e["self"],
        reverse=True,
    )

    # --- per-worker lanes: busy (job spans), utilization, stragglers --
    workers: dict = {}
    for s in spans:
        pid = s.get("pid")
        lane = lane_names.get(pid, str(pid))
        info = workers.setdefault(
            lane, {"busy": 0.0, "jobs": 0, "first": None, "last": None}
        )
        end = s["ts"] + float(s.get("dur", 0.0))
        info["first"] = s["ts"] if info["first"] is None else min(info["first"], s["ts"])
        info["last"] = end if info["last"] is None else max(info["last"], end)
        if s.get("cat") == "job":
            info["busy"] += float(s.get("dur", 0.0)) / _US
            info["jobs"] += 1
    worker_rows = []
    for lane in sorted(workers):
        info = workers[lane]
        span_wall = (
            (info["last"] - info["first"]) / _US
            if info["first"] is not None
            else 0.0
        )
        busy = info["busy"]
        worker_rows.append(
            {
                "worker": lane,
                "jobs": info["jobs"],
                "busy": busy,
                "wall": wall,
                "idle": max(wall - busy, 0.0),
                "utilization": (busy / wall) if wall else 0.0,
                "finished_at": (
                    (info["last"] - t0) / _US if info["last"] is not None else 0.0
                ),
                "span": span_wall,
            }
        )
    finishes = [w["finished_at"] for w in worker_rows]
    straggler = None
    if len(finishes) > 1:
        last, prev = sorted(finishes)[-1], sorted(finishes)[-2]
        slowest = max(worker_rows, key=lambda w: w["finished_at"])
        straggler = {
            "worker": slowest["worker"],
            "finished_at": last,
            "gap": last - prev,
        }

    # --- instants by name (lease grants, requeues, reductions...) -----
    instant_counts: dict[str, int] = {}
    for i in instants:
        instant_counts[i.get("name", "?")] = instant_counts.get(i.get("name", "?"), 0) + 1

    categories: dict[str, int] = {}
    self_by_category: dict[str, float] = {}
    for s in spans:
        cat = s.get("cat", "span")
        categories[cat] = categories.get(cat, 0) + 1
        self_by_category[cat] = (
            self_by_category.get(cat, 0.0) + max(self_us[id(s)], 0.0) / _US
        )

    return {
        "events": len(spans) + len(instants),
        "spans": len(spans),
        "instants": dict(sorted(instant_counts.items())),
        "categories": dict(sorted(categories.items())),
        "self_by_category": dict(sorted(self_by_category.items())),
        "wall": wall,
        "self_total": sum(max(v, 0.0) for v in self_us.values()) / _US,
        "kernel_calls": kernel_calls,
        "tier_counts": tier_counts,
        "tier_rates": tier_rates,
        "top_kernels": top_kernels,
        "workers": worker_rows,
        "straggler": straggler,
    }


def summarize_events(events) -> dict:
    """Aggregate *buffered tracer events* (seconds timestamps) directly.

    The in-process counterpart of :func:`summarize_trace`: convert the
    tracer's drained buffer through the same Chrome-record path the file
    export uses, then aggregate — so a live summary (the bench harness's
    per-cell attribution) and an offline ``trace summary`` of the written
    file can never disagree.
    """
    return summarize_trace(_chrome_events(list(events)))


def _pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def describe_summary(summary: dict, *, top: int = 8) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [
        f"trace: {summary['events']} events "
        f"({summary['spans']} spans), wall {summary['wall']:.3f}s, "
        f"busy (self) {summary['self_total']:.3f}s"
    ]
    if summary["kernel_calls"]:
        rates = summary["tier_rates"]
        tiers = "  ".join(
            f"{tier}={_pct(rates[tier])}"
            for tier in TIERS
            if summary["tier_counts"].get(tier)
        )
        lines.append(f"kernel calls: {summary['kernel_calls']}  [{tiers}]")
        lines.append("top kernels by self-time:")
        for entry in summary["top_kernels"][:top]:
            tiers = ",".join(
                f"{t}:{n}" for t, n in sorted(entry["tiers"].items())
            )
            lines.append(
                f"  {entry['kernel']:<24} self {entry['self']:.3f}s  "
                f"total {entry['total']:.3f}s  calls {entry['count']}  [{tiers}]"
            )
    if summary["workers"]:
        lines.append("workers:")
        for w in summary["workers"]:
            lines.append(
                f"  {w['worker']:<24} jobs {w['jobs']:<4} busy {w['busy']:.3f}s  "
                f"idle {w['idle']:.3f}s  util {_pct(w['utilization'])}"
            )
    if summary.get("straggler"):
        s = summary["straggler"]
        lines.append(
            f"straggler: {s['worker']} finished {s['gap']:.3f}s after the "
            f"next-latest lane"
        )
    if summary["instants"]:
        inst = "  ".join(f"{k}={v}" for k, v in summary["instants"].items())
        lines.append(f"events: {inst}")
    return "\n".join(lines)
