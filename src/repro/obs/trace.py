"""Low-overhead structured tracing: spans, instant events, one buffer.

A *span* is one timed operation — a kernel call, a store flush, a batch
job, a seed stream — recorded as a dict compatible with the Chrome
``trace_event`` format (:mod:`repro.obs.export` writes the file).  The
global :data:`TRACER` buffers spans in memory; nothing is ever written
from the hot path, and when tracing is disabled (the default) a span is
a single attribute check plus a shared no-op context manager — cheap
enough to leave in every kernel call.

Single-writer invariant, extended to the trace file: worker processes
(pool workers, distributed workers) never write the trace.  Their spans
are drained into each :class:`~repro.engine.batch.JobResult`
(``trace_events``) exactly like banked store rows, and the batch parent
— or the distributed coordinator — absorbs them into its own buffer,
which is the only one ever exported.  A worker killed mid-job simply
never ships its partial spans: they are dropped, and the trace file
(written atomically, after the run) can never be torn.

Clock alignment: every event's ``ts`` is wall-clock seconds
(``time.time``), so lanes from different processes on one host line up
for free.  Remote workers estimate their offset against the
coordinator's clock from the handshake (:func:`estimate_clock_offset` —
the classic NTP midpoint) and the tracer applies it at drain time, so
by the time spans reach the coordinator they are already on its
timeline.

Enabling: ``REPRO_TRACE=/path/to/trace.json`` in the environment, or
:func:`repro.obs.configure_trace` / the ``--trace FILE`` CLI flags.  A
distributed worker needs neither — the coordinator's handshake tells it
to buffer (events ship home regardless of the worker's environment).
"""

from __future__ import annotations

import math
import os
import threading
import time

__all__ = [
    "TraceSpan",
    "Tracer",
    "TRACER",
    "span",
    "instant",
    "estimate_clock_offset",
]

#: Keys every buffered event must carry; :meth:`Tracer.absorb` drops
#: anything else (a torn or malicious payload must not corrupt a trace).
_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "lane")

#: Buffered events above this count are dropped (counted, not silently):
#: tracing must bound memory even on runs far longer than it was sized
#: for.  Generous — a full n=4 sweep books tens of thousands of spans.
MAX_EVENTS = 1 << 20


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class TraceSpan:
    """The mutable handle a ``with span(...)`` block receives.

    ``set(**attrs)`` attaches attributes (the Chrome ``args`` mapping) —
    the kernel wrapper uses it to record which tier served the call once
    it knows.  The no-op twin (:class:`_NoopSpan`) absorbs the same
    calls so instrumented code never branches on whether tracing is on.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **attrs) -> "TraceSpan":
        self.args.update(attrs)
        return self

    def __enter__(self) -> "TraceSpan":
        self._start = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.time()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._record(
            {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": self._start,
                "dur": max(end - self._start, 0.0),
                "lane": self._tracer.lane(),
                "tid": threading.get_ident(),
                "args": self.args,
            }
        )


class _NoopSpan:
    """Shared do-nothing span for the disabled path (one global instance)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


class Tracer:
    """Process-global span buffer with fork safety and clock offsetting.

    ``enabled`` is the master switch the hot paths check; ``path`` is
    where :func:`repro.obs.write_trace` exports (``None`` for workers,
    which only buffer and ship).  ``clock_offset`` (seconds to *add* to
    local timestamps) is applied at :meth:`drain` time, so a remote
    worker's spans arrive at the coordinator already on its timeline.
    """

    def __init__(self, enabled: bool = False, path: str | None = None):
        self.enabled = enabled
        self.path = path
        self.clock_offset = 0.0
        self.dropped = 0
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._lane: str | None = None

    def lane(self) -> str:
        """This process's lane label (``host:pid``), fork-aware.

        A forked pool worker inherits the parent's buffer *and* lane;
        the pid check resets both, so a child never re-ships (duplicate)
        events the parent still holds and its spans land in their own
        Perfetto lane.
        """
        pid = os.getpid()
        if self._lane is None or pid != self._pid:
            import socket

            lane = f"{socket.gethostname()}:{pid}"
            with self._lock:
                if pid != self._pid:
                    # Forked child: the buffered events belong to the
                    # parent (which still holds its own copy) — re-shipping
                    # them from here would duplicate every span.
                    self._events = []
                    self.dropped = 0
                    self._pid = pid
                self._lane = lane
        return self._lane

    def _record(self, event: dict) -> None:
        if not self.enabled:
            return
        event["lane"] = self.lane()  # also runs the fork check
        with self._lock:
            if len(self._events) >= MAX_EVENTS:
                self.dropped += 1
                return
            self._events.append(event)

    def instant(self, name: str, cat: str = "event", **attrs) -> None:
        """Record one zero-duration event (lease grants, requeues, ...)."""
        if not self.enabled:
            return
        self._record(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": time.time(),
                "lane": self.lane(),
                "tid": threading.get_ident(),
                "args": dict(attrs),
            }
        )

    def span(self, name: str, cat: str = "span", **attrs):
        """A context manager timing its block; no-op when disabled."""
        if not self.enabled:
            return _NOOP
        return TraceSpan(self, name, cat, dict(attrs))

    # ------------------------------------------------------------------
    # Shipping: workers drain, parents absorb
    # ------------------------------------------------------------------
    def drain(self) -> tuple[dict, ...]:
        """Remove and return buffered events, clock offset applied.

        The worker half of span shipping: events ride home inside each
        :class:`~repro.engine.batch.JobResult` exactly like drained
        store rows, and applying ``clock_offset`` here means receivers
        never need to know whose clock produced a timestamp.
        """
        with self._lock:
            events = self._events
            self._events = []
        if not self.clock_offset:
            return tuple(events)
        shifted = []
        for event in events:
            event = dict(event)
            event["ts"] = event["ts"] + self.clock_offset
            shifted.append(event)
        return tuple(shifted)

    def absorb(self, events) -> int:
        """Fold drained (possibly remote) events into this buffer.

        Validation, not trust: a malformed event — wrong type, missing
        keys, non-finite timestamp — is dropped rather than poisoning
        the eventual trace file.  Partial spans from a killed worker
        never arrive at all; this guards against the torn ones that do.
        Returns the number of events kept.
        """
        if not self.enabled or not events:
            return 0
        kept = 0
        with self._lock:
            for event in events:
                if not isinstance(event, dict):
                    continue
                if any(key not in event for key in _REQUIRED_KEYS):
                    continue
                if not _finite(event["ts"]):
                    continue
                if "dur" in event and not _finite(event["dur"]):
                    continue
                if len(self._events) >= MAX_EVENTS:
                    self.dropped += 1
                    continue
                self._events.append(event)
                kept += 1
        return kept

    def snapshot(self) -> tuple[dict, ...]:
        """The buffered events without draining them (tests, summaries)."""
        with self._lock:
            return tuple(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events = []
            self.dropped = 0


#: The process-global tracer every instrumented layer records into.
#: ``REPRO_TRACE=FILE`` enables it at import; :func:`repro.obs.
#: configure_trace` and the distributed handshake flip it at runtime.
TRACER = Tracer(
    enabled=bool(os.environ.get("REPRO_TRACE")),
    path=os.environ.get("REPRO_TRACE") or None,
)


def span(name: str, cat: str = "span", **attrs):
    """Module-level shortcut: ``with span("kernel:x", tier="memo"): ...``"""
    return TRACER.span(name, cat, **attrs)


def instant(name: str, cat: str = "event", **attrs) -> None:
    """Module-level shortcut for :meth:`Tracer.instant`."""
    TRACER.instant(name, cat, **attrs)


def estimate_clock_offset(
    local_send: float, local_recv: float, remote_time: float
) -> float:
    """Seconds to add to this host's clock to land on the remote's.

    The classic single-exchange NTP estimate: the remote stamped
    ``remote_time`` somewhere between our ``local_send`` and
    ``local_recv``, so the best guess pairs it with the midpoint —
    ``offset = remote_time - (local_send + local_recv) / 2`` — and the
    error is bounded by half the round-trip.  The correction is one
    constant shift per connection, so it preserves the *order* and the
    *durations* of every local timestamp exactly (the monotonicity the
    tests pin); only the lane's absolute position moves.
    """
    midpoint = (local_send + local_recv) / 2.0
    return remote_time - midpoint
