"""Process-global metrics: counters, histograms, and one stats surface.

Two halves:

* **Primitive metrics** — :meth:`MetricsRegistry.counter` and
  :meth:`MetricsRegistry.histogram` hand out named, thread-safe
  instruments any layer can increment without ceremony.  They are
  always on (an integer add is cheaper than checking a switch) and
  surface through :meth:`MetricsRegistry.snapshot`.

* **Registered stats providers** — the pre-existing stats surfaces
  (:class:`~repro.engine.cache.CacheStats`,
  :class:`~repro.store.backend.StoreStats`, the coordinator's dist
  metrics) each register a provider returning their ``as_dict()``
  shape.  ``snapshot()`` collects them all under stable top-level keys,
  which is what keeps ``sweep --json`` / ``cache-stats --json`` /
  ``dist status --json`` from drifting apart: every surface renders the
  same dict the registry would.

The registry is deliberately dumb: no export loop, no backends — the
trace file and the ``--json`` CLIs are the transport.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def as_dict(self) -> dict:
        return {"name": self.name, "value": self._value}


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    No buckets: the consumers here want totals and extremes (span
    durations, flush sizes), and a bucketed histogram would invite
    bikeshedding over boundaries nothing reads.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-keyed counters/histograms plus pluggable stats providers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            return histogram

    def register_stats(self, name: str, provider) -> None:
        """Register (or replace) a zero-arg callable returning a dict.

        Providers run lazily at :meth:`snapshot` time — registering is
        free and safe at import.  A provider that raises is reported as
        ``{"error": ...}`` rather than taking the whole snapshot down
        (observability must never crash the observed).
        """
        with self._lock:
            self._providers[name] = provider

    def snapshot(self) -> dict:
        """Everything, JSON-ready: counters, histograms, provider stats."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
            providers = dict(self._providers)
        stats = {}
        for name, provider in sorted(providers.items()):
            try:
                stats[name] = provider()
            except Exception as exc:
                stats[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.as_dict() for h in histograms},
            "stats": stats,
        }

    def reset(self) -> None:
        """Drop every instrument (tests); providers stay registered."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


#: The process-global registry every layer shares.
METRICS = MetricsRegistry()
