"""Cache observability: a standard probe workload for ``repro cache-stats``.

A fresh process has an empty kernel cache, so raw counters alone say
nothing about whether memoization still works.  :func:`cache_probe` runs a
fixed, representative kernel workload several times against a cleared
cache and reports per-pass wall times plus the cache statistics; a healthy
engine shows the warm passes an order of magnitude faster than the cold
one.  The CLI (``python -m repro cache-stats``) prints the result, making
caching regressions observable without a profiler.

:func:`store_probe` is the second-tier counterpart (``python -m repro
store probe``): it clears the in-process cache *between* passes, so any
warm-pass speedup is attributable to the persistent store alone — the
same observation a fresh process rerunning an experiment suite makes.
Both reports serialise to JSON (``--json``) for CI assertions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .cache import KERNEL_CACHE, CacheStats

__all__ = ["ProbeReport", "StoreProbeReport", "cache_probe", "store_probe"]


@dataclass(frozen=True)
class ProbeReport:
    """Per-pass wall times over a fixed workload, plus cache statistics."""

    pass_times: tuple[float, ...]
    stats: CacheStats

    @property
    def cold_time(self) -> float:
        return self.pass_times[0]

    @property
    def warm_time(self) -> float:
        """Mean wall time of the warm (second and later) passes."""
        warm = self.pass_times[1:]
        return sum(warm) / len(warm)

    @property
    def speedup(self) -> float:
        """Cold-pass time over mean warm-pass time."""
        return self.cold_time / max(self.warm_time, 1e-9)

    def describe(self) -> str:
        lines = [f"pass 1 (cold): {self.cold_time * 1000:.1f} ms"]
        for index, elapsed in enumerate(self.pass_times[1:], start=2):
            lines.append(f"pass {index} (warm): {elapsed * 1000:.1f} ms")
        lines.append(f"warm speedup: {self.speedup:.1f}x")
        lines.append(self.stats.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation for tooling and CI assertions."""
        return {
            "pass_times": list(self.pass_times),
            "cold_time": self.cold_time,
            "warm_time": self.warm_time,
            "speedup": self.speedup,
            "cache": self.stats.to_dict(),
        }


def _probe_workload(n: int) -> None:
    """A fixed tour of the memoized kernels on standard families."""
    from ..bounds.report import bound_report
    from ..combinatorics.covering import covering_numbers
    from ..combinatorics.domination import equal_domination_number
    from ..graphs.dominating import domination_number
    from ..graphs.families import cycle, union_of_stars, wheel
    from ..graphs.metrics import diameter
    from ..graphs.symmetry import symmetric_closure
    from ..verification.solvability import decide_one_round_solvability

    for g in (cycle(n), wheel(n), union_of_stars(n, (0, 1))):
        domination_number(g)
        equal_domination_number(g)
        covering_numbers(g)
        diameter(g)
    sym = sorted(symmetric_closure([union_of_stars(n, (0, 1))]))
    bound_report(sym)
    decide_one_round_solvability([cycle(3)], 1)
    decide_one_round_solvability(sorted(symmetric_closure([cycle(3)])), 2)


def cache_probe(n: int = 5, passes: int = 3) -> ProbeReport:
    """Time the standard workload against a cleared cache.

    The first pass computes everything (cold); later passes should be
    nearly free.  Clears the global cache first so the report reflects
    this probe alone.
    """
    if passes < 2:
        raise ValueError(f"need at least 2 passes to compare, got {passes}")
    KERNEL_CACHE.clear()
    times = []
    for _ in range(passes):
        start = time.perf_counter()
        _probe_workload(n)
        times.append(time.perf_counter() - start)
    return ProbeReport(pass_times=tuple(times), stats=KERNEL_CACHE.stats())


@dataclass(frozen=True)
class StoreProbeReport:
    """Per-pass wall times with the in-process cache cleared every pass.

    Pass 1 computes (and, in ``rw`` mode, persists); every later pass
    starts from an empty :data:`KERNEL_CACHE` — a stand-in for a fresh
    process — so its speed is the store's doing alone.
    """

    pass_times: tuple[float, ...]
    cache_stats: CacheStats
    store_stats: object
    """Merged :class:`~repro.store.StoreStats` over all passes."""
    store_path: str
    store_mode: str

    @property
    def cold_time(self) -> float:
        return self.pass_times[0]

    @property
    def warm_time(self) -> float:
        """Mean wall time of the warm (second and later) passes."""
        warm = self.pass_times[1:]
        return sum(warm) / len(warm)

    @property
    def speedup(self) -> float:
        """Cold-pass time over mean warm-pass (fresh-process) time."""
        return self.cold_time / max(self.warm_time, 1e-9)

    def describe(self) -> str:
        lines = [
            f"store: {self.store_path} ({self.store_mode})",
            f"pass 1 (cold, computes + persists): "
            f"{self.cold_time * 1000:.1f} ms",
        ]
        for index, elapsed in enumerate(self.pass_times[1:], start=2):
            lines.append(
                f"pass {index} (fresh cache, warm store): "
                f"{elapsed * 1000:.1f} ms"
            )
        lines.append(f"warm-start speedup: {self.speedup:.1f}x")
        lines.append(self.store_stats.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "store_path": self.store_path,
            "store_mode": self.store_mode,
            "pass_times": list(self.pass_times),
            "cold_time": self.cold_time,
            "warm_time": self.warm_time,
            "speedup": self.speedup,
            "store": self.store_stats.to_dict(),
            "cache": self.cache_stats.to_dict(),
        }


def store_probe(n: int = 5, passes: int = 2) -> StoreProbeReport:
    """Measure what the persistent store buys a brand-new process.

    Requires an active store (``REPRO_STORE=ro|rw``).  The kernel cache
    is cleared before *every* pass, so pass 2+ can only be fast by
    warm-starting from the store; against a pre-populated store even the
    first pass is warm (the probe is then an end-to-end hit check).
    """
    from .. import store as result_store

    store = result_store.active_store()
    if store is None:
        raise ValueError(
            "store probe needs an active result store; set REPRO_STORE=rw "
            "(or ro against an existing store file)"
        )
    if passes < 2:
        raise ValueError(f"need at least 2 passes to compare, got {passes}")
    baseline = store.stats()
    times = []
    for _ in range(passes):
        KERNEL_CACHE.clear()
        start = time.perf_counter()
        _probe_workload(n)
        times.append(time.perf_counter() - start)
    store.flush()
    return StoreProbeReport(
        pass_times=tuple(times),
        cache_stats=KERNEL_CACHE.stats(),
        store_stats=store.stats().delta_since(baseline),
        store_path=store.path,
        store_mode=store.mode,
    )
