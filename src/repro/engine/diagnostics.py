"""Cache observability: a standard probe workload for ``repro cache-stats``.

A fresh process has an empty kernel cache, so raw counters alone say
nothing about whether memoization still works.  :func:`cache_probe` runs a
fixed, representative kernel workload several times against a cleared
cache and reports per-pass wall times plus the cache statistics; a healthy
engine shows the warm passes an order of magnitude faster than the cold
one.  The CLI (``python -m repro cache-stats``) prints the result, making
caching regressions observable without a profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .cache import KERNEL_CACHE, CacheStats

__all__ = ["ProbeReport", "cache_probe"]


@dataclass(frozen=True)
class ProbeReport:
    """Per-pass wall times over a fixed workload, plus cache statistics."""

    pass_times: tuple[float, ...]
    stats: CacheStats

    @property
    def cold_time(self) -> float:
        return self.pass_times[0]

    @property
    def warm_time(self) -> float:
        """Mean wall time of the warm (second and later) passes."""
        warm = self.pass_times[1:]
        return sum(warm) / len(warm)

    @property
    def speedup(self) -> float:
        """Cold-pass time over mean warm-pass time."""
        return self.cold_time / max(self.warm_time, 1e-9)

    def describe(self) -> str:
        lines = [f"pass 1 (cold): {self.cold_time * 1000:.1f} ms"]
        for index, elapsed in enumerate(self.pass_times[1:], start=2):
            lines.append(f"pass {index} (warm): {elapsed * 1000:.1f} ms")
        lines.append(f"warm speedup: {self.speedup:.1f}x")
        lines.append(self.stats.describe())
        return "\n".join(lines)


def _probe_workload(n: int) -> None:
    """A fixed tour of the memoized kernels on standard families."""
    from ..bounds.report import bound_report
    from ..combinatorics.covering import covering_numbers
    from ..combinatorics.domination import equal_domination_number
    from ..graphs.dominating import domination_number
    from ..graphs.families import cycle, union_of_stars, wheel
    from ..graphs.metrics import diameter
    from ..graphs.symmetry import symmetric_closure
    from ..verification.solvability import decide_one_round_solvability

    for g in (cycle(n), wheel(n), union_of_stars(n, (0, 1))):
        domination_number(g)
        equal_domination_number(g)
        covering_numbers(g)
        diameter(g)
    sym = sorted(symmetric_closure([union_of_stars(n, (0, 1))]))
    bound_report(sym)
    decide_one_round_solvability([cycle(3)], 1)
    decide_one_round_solvability(sorted(symmetric_closure([cycle(3)])), 2)


def cache_probe(n: int = 5, passes: int = 3) -> ProbeReport:
    """Time the standard workload against a cleared cache.

    The first pass computes everything (cold); later passes should be
    nearly free.  Clears the global cache first so the report reflects
    this probe alone.
    """
    if passes < 2:
        raise ValueError(f"need at least 2 passes to compare, got {passes}")
    KERNEL_CACHE.clear()
    times = []
    for _ in range(passes):
        start = time.perf_counter()
        _probe_workload(n)
        times.append(time.perf_counter() - start)
    return ProbeReport(pass_times=tuple(times), stats=KERNEL_CACHE.stats())
