"""Canonical cache keys and interning for communication graphs.

Two key flavours, matching how the kernels use graphs:

* :func:`adjacency_key` — the exact ``(n, out_rows)`` identity of a graph.
  Cheap, always correct; the default key for kernels whose result depends
  on the concrete labelling (minimum dominating *sets*, eccentricities).
* :func:`iso_key` — an isomorphism-invariant key: the lexicographically
  least adjacency key over all ``n!`` relabellings.  Correct only for
  label-invariant kernels (domination/covering *numbers*, diameters,
  Betti numbers of label-symmetric constructions).  Computing it is
  ``O(n! · n)``, which beats the kernels it deduplicates for small ``n``
  — exactly the symmetric families, whose orbits put up to ``n!``
  relabellings of one graph through every kernel — and loses above that,
  so graphs with ``n > ISO_KEY_MAX_N`` silently fall back to the exact
  adjacency key.

:func:`intern_graph` maps structurally equal graphs to one shared object
so orbit-heavy workloads hold one copy per distinct graph and identity
checks (`is`) can replace structural comparisons in hot paths.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import permutations

from ..graphs.digraph import Digraph
from .cache import cached_kernel

__all__ = [
    "ISO_KEY_MAX_N",
    "adjacency_key",
    "iso_key",
    "graph_set_key",
    "intern_graph",
]

#: Largest process count for which :func:`iso_key` canonicalises; beyond
#: this the ``n!`` sweep costs more than the kernels it would deduplicate.
ISO_KEY_MAX_N = 7

GraphKey = tuple[int, tuple[int, ...]]


def adjacency_key(g: Digraph) -> GraphKey:
    """Exact structural key: ``(n, out_rows)``."""
    return (g.n, g.out_rows)


@cached_kernel(name="iso_key", key=adjacency_key)
def iso_key(g: Digraph) -> GraphKey:
    """Isomorphism-invariant key (exact adjacency key when ``n`` is large).

    For ``n <= ISO_KEY_MAX_N`` this is the minimum of
    :func:`adjacency_key` over the relabelling orbit, i.e. the key of
    ``repro.graphs.symmetry.canonical_form(g)`` — two small graphs share
    an iso key iff they are isomorphic.
    """
    n = g.n
    if n > ISO_KEY_MAX_N:
        return adjacency_key(g)
    rows = g.out_rows
    best: tuple[int, ...] | None = None
    for perm in permutations(range(n)):
        relabelled = [0] * n
        for u, row in enumerate(rows):
            new_row = 0
            while row:
                low = row & -row
                new_row |= 1 << perm[low.bit_length() - 1]
                row ^= low
            relabelled[perm[u]] = new_row
        candidate = tuple(relabelled)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return (n, best)


def graph_set_key(
    graphs: Iterable[Digraph], invariant: bool = False
) -> tuple[GraphKey, ...]:
    """Order- and multiplicity-insensitive key for a set of graphs.

    With ``invariant=True`` each member key is :func:`iso_key` — use only
    for kernels invariant under *simultaneous* relabelling of a set that
    is itself closed under relabelling (e.g. symmetric closures).
    """
    member_key = iso_key if invariant else adjacency_key
    return tuple(sorted(set(member_key(g) for g in graphs)))


_INTERNED: dict[GraphKey, Digraph] = {}
_INTERN_LIMIT = 1 << 14


def intern_graph(g: Digraph) -> Digraph:
    """Return the canonical shared instance for graphs equal to ``g``."""
    key = adjacency_key(g)
    interned = _INTERNED.get(key)
    if interned is None:
        if len(_INTERNED) >= _INTERN_LIMIT:
            # Wholesale reset: interning is an optimisation, not identity
            # semantics, and tracking LRU order here would cost more than
            # re-interning the few thousand live graphs ever does.
            _INTERNED.clear()
        _INTERNED[key] = interned = g
    return interned
