"""Shared compute engine: interned graphs, memoized kernels, batch driver.

Every bound and experiment in this reproduction reduces to a handful of
expensive kernels — domination / covering numbers, homology ranks, the
one-round solvability CSP — and most workloads call them repeatedly on
structurally identical graphs (symmetric closures alone multiply every
generator by up to ``n!`` relabellings).  This package factors the shared
infrastructure out of the call sites:

* :mod:`~repro.engine.canonical` — canonical cache keys for graphs and
  graph sets: an isomorphism-invariant key for small graphs (so every
  member of a symmetric orbit shares one cache line for iso-invariant
  kernels) and the exact adjacency key otherwise, plus graph interning so
  equal graphs share one object.
* :mod:`~repro.engine.cache` — :class:`KernelCache`, a process-global,
  size-bounded memo store with per-kernel hit/miss statistics, and the
  :func:`cached_kernel` decorator adopted by the hot kernels in
  :mod:`repro.graphs`, :mod:`repro.combinatorics`, :mod:`repro.topology`
  and :mod:`repro.verification`.
* :mod:`~repro.engine.batch` — :class:`Job` / :func:`run_batch`, a
  ``multiprocessing`` fan-out driver with per-worker cache warmup and
  merged statistics, used by ``bounds.bound_report_many`` and the
  experiment runner (``python -m repro experiments --jobs N``).

The cache can be disabled globally (``KERNEL_CACHE.enabled = False``),
temporarily (:func:`cache_disabled`), or via the ``REPRO_NO_CACHE``
environment variable; the equivalence tests assert that results are
identical either way.
"""

from .batch import BatchResult, Job, JobError, JobResult, run_batch
from .cache import (
    KERNEL_CACHE,
    CacheStats,
    KernelCache,
    cache_disabled,
    cached_kernel,
)
from .canonical import (
    ISO_KEY_MAX_N,
    adjacency_key,
    graph_set_key,
    intern_graph,
    iso_key,
)

__all__ = [
    "KERNEL_CACHE",
    "CacheStats",
    "KernelCache",
    "cache_disabled",
    "cached_kernel",
    "ISO_KEY_MAX_N",
    "adjacency_key",
    "graph_set_key",
    "intern_graph",
    "iso_key",
    "BatchResult",
    "Job",
    "JobError",
    "JobResult",
    "run_batch",
]
