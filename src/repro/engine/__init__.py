"""Shared compute engine: interned graphs, memoized kernels, batch driver.

Every bound and experiment in this reproduction reduces to a handful of
expensive kernels — domination / covering numbers, homology ranks, the
one-round solvability CSP — and most workloads call them repeatedly on
structurally identical graphs (symmetric closures alone multiply every
generator by up to ``n!`` relabellings).  This package factors the shared
infrastructure out of the call sites:

* :mod:`~repro.engine.canonical` — canonical cache keys for graphs and
  graph sets: an isomorphism-invariant key for small graphs (so every
  member of a symmetric orbit shares one cache line for iso-invariant
  kernels) and the exact adjacency key otherwise, plus graph interning so
  equal graphs share one object.
* :mod:`~repro.engine.cache` — :class:`KernelCache`, a process-global,
  size-bounded memo store with per-kernel hit/miss statistics, and the
  :func:`cached_kernel` decorator adopted by the hot kernels in
  :mod:`repro.graphs`, :mod:`repro.combinatorics`, :mod:`repro.topology`
  and :mod:`repro.verification`.
* :mod:`~repro.engine.batch` — :class:`Job` / :func:`run_batch`, a
  ``multiprocessing`` fan-out driver with per-worker cache warmup and
  merged statistics, used by ``bounds.bound_report_many`` and the
  experiment runner (``python -m repro experiments --jobs N``).

The cache can be disabled globally (``KERNEL_CACHE.enabled = False``),
temporarily (:func:`cache_disabled`), or via the ``REPRO_NO_CACHE``
environment variable; the equivalence tests assert that results are
identical either way.

Second tier: when :mod:`repro.store` is switched on (``REPRO_STORE=ro``
or ``rw``), kernel misses fall through to a persistent SQLite result
store keyed on ``(kernel, implementation version, canonical key)`` before
computing, and new results are written back in batches — so fresh
processes (reruns, CI, batch workers) warm-start from everything any
earlier process computed.  ``run_batch`` drains each worker's store
writes back to the parent with the job results: the parent is the only
database writer, and it persists each job as it completes, which is what
makes sharded sweeps (:mod:`repro.analysis.sweeps`) resumable after a
kill.
"""

from .batch import (
    BatchResult,
    Job,
    JobError,
    JobFailure,
    JobResult,
    Reduction,
    execute_job,
    finalize_outcomes,
    fire_reduction,
    run_batch,
)
from .cache import (
    KERNEL_CACHE,
    KERNEL_VERSION_VARIANTS,
    KERNEL_VERSIONS,
    CacheStats,
    KernelCache,
    cache_disabled,
    cached_kernel,
    kernel_source_version,
)
from .canonical import (
    ISO_KEY_MAX_N,
    adjacency_key,
    graph_set_key,
    intern_graph,
    iso_key,
)

__all__ = [
    "KERNEL_CACHE",
    "KERNEL_VERSIONS",
    "KERNEL_VERSION_VARIANTS",
    "CacheStats",
    "KernelCache",
    "cache_disabled",
    "cached_kernel",
    "kernel_source_version",
    "ISO_KEY_MAX_N",
    "adjacency_key",
    "graph_set_key",
    "intern_graph",
    "iso_key",
    "BatchResult",
    "Job",
    "JobError",
    "JobFailure",
    "JobResult",
    "Reduction",
    "execute_job",
    "finalize_outcomes",
    "fire_reduction",
    "run_batch",
]
