"""Parallel batch driver: fan experiment jobs out across cores.

A :class:`Job` names a picklable top-level callable plus its arguments;
:func:`run_batch` executes a sequence of jobs either serially (``jobs=1``,
the reference path) or on a ``multiprocessing`` pool, returning values in
submission order together with per-job timings and merged kernel-cache
statistics.  The two paths are observationally identical: jobs must be
independent pure computations, so the only difference is wall-clock.

Worker caches: on fork-capable platforms every worker inherits the
parent's warm :data:`~repro.engine.cache.KERNEL_CACHE` at fork time; an
optional ``warmup`` callable runs once per worker for spawn platforms or
for priming beyond the parent's state.  Each job ships its cache-stats
delta back with its result, and the parent absorbs the deltas so global
statistics reflect work done everywhere.

Persistent store merge: when the result store (:mod:`repro.store`) is in
``rw`` mode, every job also ships back the store *rows* it queued (its
write delta) and its store-stats delta.  Only the parent process ever
writes to SQLite: it absorbs each job's rows as that job completes —
results stream back in submission order (``imap``), so a run killed
midway has already persisted every finished job, which is what makes
sharded sweeps resumable.

Nested batches degrade gracefully: pool workers are daemonic and cannot
spawn their own pools, so a ``run_batch`` call inside a worker silently
runs serially instead of crashing.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from ..errors import EngineError
from .cache import KERNEL_CACHE, CacheStats

__all__ = ["Job", "JobResult", "JobError", "BatchResult", "run_batch"]


@dataclass(frozen=True)
class Job:
    """One unit of batch work: ``fn(*args, **kwargs)``.

    ``fn`` must be an importable module-level callable (pool workers
    receive jobs by pickling) and, like every cached kernel, must be a
    pure function of its arguments.
    """

    name: str
    fn: Callable
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)

    def run(self) -> object:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class JobResult:
    """A job's value plus its observability payload."""

    name: str
    value: object
    elapsed: float
    stats: CacheStats
    """Kernel-cache activity attributable to this job alone."""

    store_stats: object = None
    """Store-tier activity attributable to this job (``StoreStats`` or
    ``None`` when the persistent store was off)."""

    store_rows: tuple = ()
    """Pending store rows this job produced; drained from the executing
    process so the batch parent is the only SQLite writer."""


class JobError(EngineError):
    """A batch job raised; the original exception is chained as cause."""

    def __init__(self, job_name: str, message: str):
        super().__init__(f"job {job_name!r} failed: {message}")
        self.job_name = job_name


@dataclass(frozen=True)
class BatchResult:
    """All job results in submission order, plus merged statistics."""

    results: tuple[JobResult, ...]
    stats: CacheStats
    jobs: int
    """Worker processes actually used (1 = serial reference path)."""

    store_stats: object = None
    """Merged store-tier activity (``StoreStats``), ``None`` if off."""

    @property
    def values(self) -> tuple[object, ...]:
        return tuple(r.value for r in self.results)

    @property
    def elapsed(self) -> float:
        """Total compute time summed over jobs (not wall-clock)."""
        return sum(r.elapsed for r in self.results)


def _active_store():
    from .. import store as result_store

    return result_store.active_store()


def _execute_indexed(
    item: tuple[int, Job]
) -> tuple[int, JobResult | tuple[str, str, BaseException]]:
    """Pool adapter: keep the submission index with the outcome so the
    parent can consume completions out of order and reorder at the end."""
    index, job = item
    return index, _execute_job(job)


def _execute_job(job: Job) -> JobResult | tuple[str, str, BaseException]:
    """Run one job, measuring wall time and the cache/store deltas."""
    store = _active_store()
    before = KERNEL_CACHE.stats()
    store_before = store.stats() if store is not None else None
    start = time.perf_counter()
    try:
        value = job.run()
    except Exception as exc:
        # Re-raised as JobError in the parent; KeyboardInterrupt/SystemExit
        # propagate so Ctrl-C keeps its semantics on the serial path.
        return (job.name, f"{type(exc).__name__}: {exc}", exc)
    elapsed = time.perf_counter() - start
    delta = KERNEL_CACHE.stats().delta_since(before)
    store_delta = None
    store_rows: tuple = ()
    if store is not None:
        store_delta = store.stats().delta_since(store_before)
        store_rows = store.drain_pending()
    return JobResult(
        name=job.name,
        value=value,
        elapsed=elapsed,
        stats=delta,
        store_stats=store_delta,
        store_rows=store_rows,
    )


def _init_worker(warmup: Callable[[], object] | None) -> None:
    if warmup is not None:
        warmup()


def _in_daemon_process() -> bool:
    return multiprocessing.current_process().daemon


def run_batch(
    tasks: Sequence[Job],
    /,
    *,
    jobs: int = 1,
    warmup: Callable[[], object] | None = None,
) -> BatchResult:
    """Execute ``tasks`` and return their results in submission order.

    Parameters
    ----------
    tasks:
        The jobs to run.  Results are returned positionally; a failing
        job raises :class:`JobError` (the first failure in submission
        order) with the worker exception chained — after every job has
        run, so all successful work is already absorbed into cache/store
        state (resumable sweeps rely on this).
    jobs:
        Worker process count.  ``1`` (default) runs serially in-process —
        the reference path the parallel path must match exactly.  Values
        above the task count are clamped; inside an existing worker the
        call degrades to serial.
    warmup:
        Optional picklable zero-argument callable run once per worker
        before any job, for cache priming (fork workers already inherit
        the parent's warm cache; this matters on spawn platforms or when
        priming beyond the parent's state).
    """
    tasks = list(tasks)
    if jobs < 1:
        raise EngineError(f"jobs must be positive, got {jobs}")
    workers = min(jobs, len(tasks))
    store = _active_store()
    if store is not None:
        # Persist (or at least re-own) anything already pending so forked
        # workers start with an empty write buffer and the per-job drains
        # attribute rows to the jobs that actually produced them.
        store.flush()

    def _absorb(outcome: JobResult | tuple) -> None:
        """Persist one finished job's store writes immediately.

        Called the moment an outcome arrives — out of submission order on
        the parallel path — so a run killed later has already banked
        every job finished by then, independent of slower neighbours.
        """
        if (
            store is not None
            and not isinstance(outcome, tuple)
            and outcome.store_rows
        ):
            store.absorb_rows(outcome.store_rows)
            store.flush()

    outcomes: list[JobResult | tuple | None] = [None] * len(tasks)
    if workers <= 1 or _in_daemon_process():
        workers = 1
        if warmup is not None:
            warmup()
        for index, job in enumerate(tasks):
            outcome = _execute_job(job)
            _absorb(outcome)
            outcomes[index] = outcome
    else:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        with context.Pool(
            processes=workers, initializer=_init_worker, initargs=(warmup,)
        ) as pool:
            # imap_unordered (not map): completions stream back as they
            # finish, so the parent persists each one immediately even
            # while a slow job holds up earlier submission slots.
            for index, outcome in pool.imap_unordered(
                _execute_indexed, list(enumerate(tasks))
            ):
                _absorb(outcome)
                outcomes[index] = outcome
    results: list[JobResult] = []
    merged = CacheStats()
    merged_store = None
    for outcome in outcomes:
        if isinstance(outcome, tuple):
            name, message, cause = outcome
            raise JobError(name, message) from cause
        assert outcome is not None
        results.append(outcome)
        merged = merged.merge(outcome.stats)
        if outcome.store_stats is not None:
            merged_store = (
                outcome.store_stats
                if merged_store is None
                else merged_store.merge(outcome.store_stats)
            )
    if workers > 1:
        # Worker processes mutated their own cache copies; fold their
        # statistics into the parent so cache-stats reports see them.
        KERNEL_CACHE.absorb(merged)
        if store is not None and merged_store is not None:
            store.absorb_stats(merged_store)
    return BatchResult(
        results=tuple(results),
        stats=merged,
        jobs=workers,
        store_stats=merged_store,
    )
