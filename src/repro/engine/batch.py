"""Parallel batch driver: fan experiment jobs out across cores.

A :class:`Job` names a picklable top-level callable plus its arguments;
:func:`run_batch` executes a sequence of jobs either serially (``jobs=1``,
the reference path) or on a ``multiprocessing`` pool, returning values in
submission order together with per-job timings and merged kernel-cache
statistics.  The two paths are observationally identical: jobs must be
independent pure computations, so the only difference is wall-clock.
A third path — a TCP work queue spanning hosts — lives in
:mod:`repro.dist`; pass any of its executors via ``executor=`` (or build
one with :func:`repro.dist.make_executor`) and the same jobs run
cluster-wide with the same results.

Worker caches: on fork-capable platforms every worker inherits the
parent's warm :data:`~repro.engine.cache.KERNEL_CACHE` at fork time; an
optional ``warmup`` callable runs once per worker for spawn platforms or
for priming beyond the parent's state.  Each job ships its cache-stats
delta back with its result, and the parent absorbs the deltas so global
statistics reflect work done everywhere.

Persistent store merge: when the result store (:mod:`repro.store`) is in
``rw`` mode, every job also ships back the store *rows* it queued (its
write delta) and its store-stats delta.  Only the parent process ever
writes to SQLite: it absorbs each job's rows as that job completes —
completions stream back unordered, so a run killed midway has already
persisted every finished job, which is what makes sharded sweeps
resumable.  The distributed executor preserves the same invariant with
the coordinator in the parent role.

Two-phase plans: a batch may carry :class:`Reduction`\\ s — phase-2 jobs
that fold the values of named phase-1 jobs into one result.  Reductions
fire *as each group's last input lands* (no barrier between phases) and
always execute in the batch parent — the store-writing process — so a
reduction may bank derived rows without touching the single-writer
invariant.  The sharded sweeps use this to decompose one giant shard
into independently schedulable sub-shards whose verdicts a pure reducer
merges back into the monolithic row.

Failures: every job runs to completion regardless of earlier failures,
and each failure is recorded as a :class:`JobFailure` naming the job that
raised.  ``on_error="raise"`` (the default) then raises a single
:class:`JobError` enumerating *all* failed jobs; ``on_error="collect"``
instead returns the failures on ``BatchResult.failures`` so sweep-style
callers can bank the successes and retry the rest.

Nested batches degrade gracefully: pool workers are daemonic and cannot
spawn their own pools, so a ``run_batch`` call inside a worker silently
runs serially instead of crashing.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback as _traceback
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from ..errors import EngineError
from ..obs.trace import TRACER
from .cache import KERNEL_CACHE, CacheStats

__all__ = [
    "Job",
    "JobResult",
    "JobFailure",
    "JobError",
    "BatchResult",
    "Reduction",
    "run_batch",
    "describe_dist_metrics",
    "dist_metrics_as_dict",
    "execute_job",
    "fire_reduction",
    "finalize_outcomes",
]


@dataclass(frozen=True)
class Job:
    """One unit of batch work: ``fn(*args, **kwargs)``.

    ``fn`` must be an importable module-level callable (pool and remote
    workers receive jobs by pickling) and, like every cached kernel, must
    be a pure function of its arguments.
    """

    name: str
    fn: Callable
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)
    cost: float | None = None
    """Optional scheduler cost estimate (same scale the sweep planner
    sorts by).  Pure metadata: execution ignores it, but the distributed
    coordinator scales each job's lease with it so a dying worker's
    heavy sub-shard re-leases before the tail stalls, and cheap jobs
    are reclaimed long before the fixed timeout would fire."""

    def run(self) -> object:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class JobResult:
    """A job's value plus its observability payload."""

    name: str
    value: object
    elapsed: float
    stats: CacheStats
    """Kernel-cache activity attributable to this job alone."""

    store_stats: object = None
    """Store-tier activity attributable to this job (``StoreStats`` or
    ``None`` when the persistent store was off)."""

    store_rows: tuple = ()
    """Pending store rows this job produced; drained from the executing
    process so the batch parent is the only SQLite writer."""

    store_touches: tuple = ()
    """Last-used refreshes for store rows this job read (drained like
    ``store_rows``; the parent applies them so prune's recency signal
    survives pool/dist execution)."""

    worker: str = ""
    """Lane label (``host:pid``) of the process that executed this job —
    per-worker attribution for pool metrics and trace summaries."""

    trace_events: tuple = ()
    """Trace spans drained from the executing process, shipped home like
    ``store_rows`` so the batch parent (or dist coordinator) stays the
    trace file's only writer.  Empty unless tracing is enabled."""


@dataclass(frozen=True)
class Reduction:
    """A phase-2 job: fold the values of earlier jobs into one result.

    ``fn`` is called as ``fn(values, *args, **kwargs)`` where ``values``
    are the ``over`` jobs' return values in ``over`` order.  Like every
    job it must be a pure function of its inputs — but unlike phase-1
    jobs it always runs in the batch parent (serial driver, pool parent,
    or distributed coordinator), the moment the last ``over`` job's
    result lands.  There is no barrier: with several reductions in
    flight, each fires independently of the others' progress, so a slow
    group never delays a finished one.

    If any ``over`` job failed, the reduction is not executed and is
    recorded as a :class:`JobFailure` naming the failed inputs.
    """

    name: str
    fn: Callable
    over: tuple[int, ...]
    """Submission indices of the phase-1 jobs this reduction consumes."""
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)


@dataclass(frozen=True)
class JobFailure:
    """One failed job: the name that raised plus the failure detail.

    ``cause`` carries the original exception when it is available in this
    process (serial path, pool workers); remote workers ship ``None`` with
    the formatted ``traceback`` instead, since arbitrary exceptions do not
    survive the wire.
    """

    name: str
    message: str
    index: int = -1
    """Submission index of the failed job (-1 when unknown)."""
    traceback: str | None = None
    cause: BaseException | None = None
    worker: str = ""
    """Lane label (``host:pid``) of the process the job failed in."""

    def sanitized(self) -> "JobFailure":
        """A copy safe to pickle across hosts (exception object dropped)."""
        tb = self.traceback
        if tb is None and self.cause is not None:
            tb = "".join(
                _traceback.format_exception(
                    type(self.cause), self.cause, self.cause.__traceback__
                )
            )
        return replace(self, cause=None, traceback=tb)


class JobError(EngineError):
    """One or more batch jobs raised.

    ``failures`` lists every :class:`JobFailure` of the batch (not just the
    first), so multi-failure batches are fully diagnosable from the single
    exception; the first failure's original exception is chained as cause.
    """

    def __init__(
        self, failures: Sequence[JobFailure] | JobFailure, message: str | None = None
    ):
        if isinstance(failures, JobFailure):
            failures = (failures,)
        failures = tuple(failures)
        if not failures:
            raise ValueError("JobError needs at least one failure")
        first = failures[0]
        if message is None:
            message = f"job {first.name!r} failed: {first.message}"
            if len(failures) > 1:
                others = ", ".join(repr(f.name) for f in failures[1:])
                message += (
                    f" (+{len(failures) - 1} more failed job(s): {others})"
                )
        super().__init__(message)
        self.failures = failures
        self.job_name = first.name


@dataclass(frozen=True)
class BatchResult:
    """All job results in submission order, plus merged statistics."""

    results: tuple[JobResult, ...]
    stats: CacheStats
    jobs: int
    """Worker processes actually used (1 = serial reference path; for the
    distributed executor, the number of distinct workers that served)."""

    store_stats: object = None
    """Merged store-tier activity (``StoreStats``), ``None`` if off."""

    failures: tuple[JobFailure, ...] = ()
    """Failed jobs, by name and submission index (``on_error="collect"``);
    always empty on the default raising path."""

    reduction_results: tuple[JobResult | None, ...] = ()
    """Phase-2 results, positionally aligned with the submitted
    :class:`Reduction` list: slot ``i`` is reduction ``i``'s result, or
    ``None`` when that reduction failed or was skipped over failed
    inputs (``on_error="collect"`` — the failure itself lands on
    ``failures``).  On the default raising path every slot is a
    :class:`JobResult`."""

    dist_metrics: Mapping | None = None
    """Coordinator-side metrics of a distributed batch (per-worker
    throughput, rows seeded, loads served, requeues); ``None`` for the
    serial and pool paths."""

    wall: float = 0.0
    """Parent-side wall-clock of the whole batch (submission to last
    landing), as opposed to :attr:`elapsed`'s summed compute time — the
    number the bench harness attributes scheduling overlap against."""

    @property
    def values(self) -> tuple[object, ...]:
        return tuple(r.value for r in self.results)

    @property
    def elapsed(self) -> float:
        """Total compute time summed over jobs (not wall-clock)."""
        return sum(r.elapsed for r in self.results)


def _active_store():
    from .. import store as result_store

    return result_store.active_store()


def describe_dist_metrics(metrics: Mapping) -> str:
    """Human-readable rendering of :attr:`BatchResult.dist_metrics`.

    One formatter shared by the sweep CLI and the experiment runner, so
    the coordinator's accounting reads the same everywhere it surfaces.
    """
    lines = [
        f"dist: {metrics['rows_seeded']} row(s) seeded, "
        f"{metrics['loads_served']} load(s) served, "
        f"{metrics['requeues']} requeue(s)"
    ]
    respawns = metrics.get("respawns", 0)
    replayed = metrics.get("replayed", 0)
    if respawns or replayed:
        lines[0] += f", {respawns} respawn(s), {replayed} replayed"
    for worker in metrics.get("workers", ()):
        lines.append(
            f"  worker {worker['worker']}: {worker['completed']} done, "
            f"{worker['failed']} failed, "
            f"{worker['jobs_per_minute']:.1f} jobs/min"
        )
    return "\n".join(lines)


def dist_metrics_as_dict(metrics: Mapping | None) -> dict:
    """Normalize :attr:`BatchResult.dist_metrics` to one JSON shape.

    The unified stats surface for worker metrics, whatever executor
    produced them (dist coordinator or pool parent): stable top-level
    counters plus a ``workers`` list in ``_WorkerInfo.snapshot``'s key
    shape.  Missing keys default to zero so older payloads normalize
    instead of KeyErroring.
    """
    metrics = dict(metrics or {})
    workers = []
    for worker in metrics.get("workers", ()):
        worker = dict(worker)
        workers.append(
            {
                "worker": str(worker.get("worker", "?")),
                "completed": int(worker.get("completed", 0)),
                "failed": int(worker.get("failed", 0)),
                "seeded_rows": int(worker.get("seeded_rows", 0)),
                "loads_served": int(worker.get("loads_served", 0)),
                "elapsed": float(worker.get("elapsed", 0.0)),
                "jobs_per_minute": float(worker.get("jobs_per_minute", 0.0)),
                "idle": float(worker.get("idle", 0.0)),
            }
        )
    return {
        "requeues": int(metrics.get("requeues", 0)),
        "respawns": int(metrics.get("respawns", 0)),
        "replayed": int(metrics.get("replayed", 0)),
        "rows_seeded": int(metrics.get("rows_seeded", 0)),
        "loads_served": int(metrics.get("loads_served", 0)),
        "workers": workers,
    }


def _pool_metrics(outcomes, wall: float) -> dict:
    """Per-worker-process metrics for a pool batch, dist-metrics shaped.

    Built from each outcome's ``worker`` lane so the pool path fills
    :attr:`BatchResult.dist_metrics` in exactly the coordinator's shape
    (seeding/remote-load counters are structurally present but zero —
    pool workers share the parent's filesystem and never seed).
    """
    lanes: dict[str, dict] = {}
    for outcome in outcomes:
        lane = getattr(outcome, "worker", "") or "?"
        info = lanes.setdefault(
            lane, {"completed": 0, "failed": 0, "elapsed": 0.0}
        )
        if isinstance(outcome, JobFailure):
            info["failed"] += 1
        else:
            info["completed"] += 1
            info["elapsed"] += outcome.elapsed
    workers = []
    for lane in sorted(lanes):
        info = lanes[lane]
        busy = info["elapsed"]
        workers.append(
            {
                "worker": lane,
                "completed": info["completed"],
                "failed": info["failed"],
                "seeded_rows": 0,
                "loads_served": 0,
                "elapsed": busy,
                "jobs_per_minute": (
                    info["completed"] / (busy / 60.0) if busy > 0 else 0.0
                ),
                "idle": max(wall - busy, 0.0),
            }
        )
    return {
        "requeues": 0,
        "respawns": 0,
        "replayed": 0,
        "rows_seeded": 0,
        "loads_served": 0,
        "workers": workers,
    }


def _execute_indexed(
    item: tuple[int, Job]
) -> tuple[int, JobResult | JobFailure]:
    """Pool adapter: keep the submission index with the outcome so the
    parent can consume completions out of order and reorder at the end."""
    index, job = item
    outcome = execute_job(job)
    if isinstance(outcome, JobFailure):
        outcome = replace(outcome, index=index)
    return index, outcome


def execute_job(job: Job) -> JobResult | JobFailure:
    """Run one job, measuring wall time and the cache/store deltas.

    This is the single execution primitive shared by the serial path, the
    pool workers, and the remote workers of :mod:`repro.dist`: whatever
    process calls it, the returned payload carries everything the batch
    parent needs (value, timings, cache delta, drained store rows).
    """
    store = _active_store()
    lane = TRACER.lane()
    before = KERNEL_CACHE.stats()
    store_before = store.stats() if store is not None else None
    start = time.perf_counter()
    try:
        with TRACER.span(f"job:{job.name}", cat="job"):
            value = job.run()
    except Exception as exc:
        # Converted to JobError by the parent; KeyboardInterrupt/SystemExit
        # propagate so Ctrl-C keeps its semantics on the serial path.
        return JobFailure(
            name=job.name,
            message=f"{type(exc).__name__}: {exc}",
            cause=exc,
            worker=lane,
        )
    elapsed = time.perf_counter() - start
    delta = KERNEL_CACHE.stats().delta_since(before)
    store_delta = None
    store_rows: tuple = ()
    store_touches: tuple = ()
    if store is not None:
        store_delta = store.stats().delta_since(store_before)
        store_rows = store.drain_pending()
        store_touches = store.drain_touches()
    # Drain *everything* buffered, not just this job's spans: stray
    # events recorded between jobs (handshakes, warmup flushes) ride
    # home with the next result instead of lingering in the worker.
    trace_events = TRACER.drain() if TRACER.enabled else ()
    return JobResult(
        name=job.name,
        value=value,
        elapsed=elapsed,
        stats=delta,
        store_stats=store_delta,
        store_rows=store_rows,
        store_touches=store_touches,
        worker=lane,
        trace_events=trace_events,
    )


class _ReductionState:
    """Track which reductions become ready as phase-1 outcomes land.

    Validation happens up front (indices in range, no empty or duplicate
    ``over``), so a malformed plan fails before any job runs.  Callers
    serialise access themselves: :func:`run_batch` is single-threaded in
    the parent, and the distributed coordinator calls ``ready_after``
    under its queue lock.
    """

    def __init__(self, task_count: int, reductions: Sequence[Reduction]):
        self.reductions = tuple(reductions)
        self.outcomes: list[JobResult | JobFailure | None] = [None] * len(
            self.reductions
        )
        self._remaining: list[int] = []
        self._by_index: dict[int, list[int]] = {}
        for rid, reduction in enumerate(self.reductions):
            over = tuple(reduction.over)
            if not over:
                raise EngineError(
                    f"reduction {reduction.name!r} consumes no jobs"
                )
            if len(set(over)) != len(over):
                raise EngineError(
                    f"reduction {reduction.name!r} lists a job twice"
                )
            for index in over:
                if not 0 <= index < task_count:
                    raise EngineError(
                        f"reduction {reduction.name!r} consumes job index "
                        f"{index}, but the batch has {task_count} job(s)"
                    )
                self._by_index.setdefault(index, []).append(rid)
            self._remaining.append(len(over))

    def ready_after(self, index: int) -> list[int]:
        """Reduction ids whose last input is the job at ``index``."""
        ready = []
        for rid in self._by_index.get(index, ()):
            self._remaining[rid] -= 1
            if self._remaining[rid] == 0:
                ready.append(rid)
        return ready


def fire_reduction(
    reduction: Reduction, inputs: Sequence[JobResult | JobFailure]
) -> JobResult | JobFailure:
    """Execute one ready reduction over its collected input outcomes.

    Runs in the calling (parent) process via :func:`execute_job`, so the
    returned payload carries the reduction's own timings, cache/store
    deltas and drained store rows exactly like a phase-1 job's.  If any
    input failed, the reduction is skipped and reported as a
    :class:`JobFailure` naming the failed inputs.
    """
    failed = [o for o in inputs if isinstance(o, JobFailure)]
    if failed:
        names = ", ".join(repr(f.name) for f in failed)
        return JobFailure(
            name=reduction.name,
            message=f"not reduced: input job(s) failed: {names}",
        )
    job = Job(
        name=reduction.name,
        fn=reduction.fn,
        args=(tuple(o.value for o in inputs), *reduction.args),
        kwargs=reduction.kwargs,
    )
    return execute_job(job)


def finalize_outcomes(
    outcomes: Sequence[JobResult | JobFailure],
    *,
    workers: int,
    store,
    on_error: str = "raise",
    absorb: bool | None = None,
    reduction_outcomes: Sequence[JobResult | JobFailure] = (),
) -> BatchResult:
    """Merge per-job outcomes into a :class:`BatchResult`.

    Shared by :func:`run_batch` and the distributed coordinator: folds the
    per-job cache/store deltas together, absorbs them into this process's
    cache and store statistics when the work happened elsewhere
    (``absorb``, defaulting to ``workers > 1``), and applies the
    ``on_error`` policy to any :class:`JobFailure` outcomes.

    ``reduction_outcomes`` are the already-fired phase-2 outcomes in
    reduction submission order.  Reductions always ran in *this* process,
    so their deltas are merged into the returned statistics but never
    absorbed (the live counters already saw them) — exactly the serial
    path's accounting.
    """
    if on_error not in ("raise", "collect"):
        raise EngineError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    results: list[JobResult] = []
    failures: list[JobFailure] = []
    merged = CacheStats()
    merged_store = None
    for outcome in outcomes:
        if isinstance(outcome, JobFailure):
            failures.append(outcome)
            continue
        assert outcome is not None
        results.append(outcome)
        merged = merged.merge(outcome.stats)
        if outcome.store_stats is not None:
            merged_store = (
                outcome.store_stats
                if merged_store is None
                else merged_store.merge(outcome.store_stats)
            )
    if absorb is None:
        absorb = workers > 1
    if absorb:
        # Worker processes mutated their own cache copies; fold their
        # statistics into the parent so cache-stats reports see them.
        # (Reduction deltas are parent-local and excluded on purpose.)
        KERNEL_CACHE.absorb(merged)
        if store is not None and merged_store is not None:
            store.absorb_stats(merged_store)
    # Keep positional alignment with the submitted reduction list: a
    # failed (or input-starved) reduction leaves a None slot, so
    # collect-mode callers can still index results by reduction id.
    reduction_results: list[JobResult | None] = []
    for outcome in reduction_outcomes:
        if outcome is None or isinstance(outcome, JobFailure):
            if isinstance(outcome, JobFailure):
                failures.append(outcome)
            reduction_results.append(None)
            continue
        reduction_results.append(outcome)
        merged = merged.merge(outcome.stats)
        if outcome.store_stats is not None:
            merged_store = (
                outcome.store_stats
                if merged_store is None
                else merged_store.merge(outcome.store_stats)
            )
    if failures and on_error == "raise":
        error = JobError(failures)
        raise error from failures[0].cause
    return BatchResult(
        results=tuple(results),
        stats=merged,
        jobs=workers,
        store_stats=merged_store,
        failures=tuple(failures),
        reduction_results=tuple(reduction_results),
    )


def _init_worker(warmup: Callable[[], object] | None) -> None:
    if warmup is not None:
        warmup()


def _in_daemon_process() -> bool:
    return multiprocessing.current_process().daemon


def run_batch(
    tasks: Sequence[Job],
    /,
    *,
    jobs: int = 1,
    warmup: Callable[[], object] | None = None,
    on_error: str = "raise",
    executor=None,
    reductions: Sequence[Reduction] = (),
    config=None,
    completed=(),
    checkpoint=None,
) -> BatchResult:
    """Execute ``tasks`` and return their results in submission order.

    Parameters
    ----------
    tasks:
        The jobs to run.  Results are returned positionally.  Failing jobs
        never stop the batch: every job runs, successful work is absorbed
        into cache/store state (resumable sweeps rely on this), and only
        then is the ``on_error`` policy applied.
    jobs:
        Worker process count.  ``1`` (default) runs serially in-process —
        the reference path the parallel path must match exactly.  Values
        above the task count are clamped; inside an existing worker the
        call degrades to serial.
    warmup:
        Optional picklable zero-argument callable run once per worker
        before any job, for cache priming (fork workers already inherit
        the parent's warm cache; this matters on spawn platforms or when
        priming beyond the parent's state).
    on_error:
        ``"raise"`` (default) raises one :class:`JobError` enumerating
        every failed job; ``"collect"`` returns them on
        ``BatchResult.failures`` instead.
    executor:
        Optional :mod:`repro.dist` executor; when given, ``jobs`` is
        ignored and the batch is delegated to it (``DistExecutor`` runs
        the same jobs across hosts with identical results).
    reductions:
        Optional phase-2 plan: each :class:`Reduction` fires in this
        process the moment the last of its ``over`` jobs completes —
        streaming, no barrier — and its store writes are persisted
        immediately like any job's.  Results land on
        ``BatchResult.reduction_results`` in reduction order.
    config:
        Optional :class:`repro.config.ExecutorConfig`; when given (and no
        explicit ``executor``), it supersedes ``jobs`` — a distributed
        address in the config builds the distributed executor, otherwise
        its ``jobs`` count is used as if passed directly.
    completed:
        Submission indices already completed by a previous (interrupted)
        run of the same task list.  These jobs are *replayed in the
        parent* rather than dispatched to workers: against the warm
        store that banked them they are pure hits, so reductions and
        result assembly see real outcomes while no kernel recomputes
        and no worker round trip happens.
    checkpoint:
        Optional :class:`repro.dist.checkpoint.CheckpointWriter`; each
        successful completion is recorded (throttled) so a crash leaves
        a resumable snapshot, and the final state is flushed when the
        batch finishes.
    """
    if config is not None:
        jobs = config.jobs
        if executor is None and config.distributed is not None:
            executor = config.make()
    if executor is not None:
        delegated_start = time.perf_counter()
        result = executor.run(
            tasks,
            warmup=warmup,
            on_error=on_error,
            reductions=reductions,
            completed=completed,
            checkpoint=checkpoint,
        )
        if not result.wall:
            result = replace(
                result, wall=time.perf_counter() - delegated_start
            )
        return result
    tasks = list(tasks)
    if jobs < 1:
        raise EngineError(f"jobs must be positive, got {jobs}")
    completed_set = frozenset(completed)
    for index in completed_set:
        if not 0 <= index < len(tasks):
            raise EngineError(
                f"completed index {index} out of range for "
                f"{len(tasks)} task(s)"
            )
    workers = min(jobs, len(tasks))
    batch_start = time.perf_counter()
    plan = _ReductionState(len(tasks), reductions)
    store = _active_store()
    if store is not None:
        # Persist (or at least re-own) anything already pending so forked
        # workers start with an empty write buffer and the per-job drains
        # attribute rows to the jobs that actually produced them.
        store.flush()

    def _absorb(outcome: JobResult | JobFailure) -> None:
        """Persist one finished job's store writes immediately.

        Called the moment an outcome arrives — out of submission order on
        the parallel path — so a run killed later has already banked
        every job finished by then, independent of slower neighbours.
        """
        if isinstance(outcome, JobResult):
            # Re-absorbing the serial path's own drained events is a
            # harmless round trip; from pool workers this is the only
            # way spans reach the (single-writer) trace buffer.
            TRACER.absorb(outcome.trace_events)
        if store is not None and isinstance(outcome, JobResult):
            store.absorb_touches(outcome.store_touches)
            if outcome.store_rows:
                store.absorb_rows(outcome.store_rows)
                store.flush()

    outcomes: list[JobResult | JobFailure | None] = [None] * len(tasks)

    def _land(index: int, outcome: JobResult | JobFailure) -> None:
        """Record one completion and fire any reduction it unblocks."""
        _absorb(outcome)
        outcomes[index] = outcome
        if checkpoint is not None and isinstance(outcome, JobResult):
            checkpoint.record_done(tasks[index].name)
        for rid in plan.ready_after(index):
            reduction = plan.reductions[rid]
            fired = fire_reduction(
                reduction, [outcomes[i] for i in reduction.over]
            )
            _absorb(fired)
            plan.outcomes[rid] = fired

    def _replay_completed() -> None:
        """Re-land checkpoint-completed jobs in the parent.

        The warm store that banked them answers every kernel, so this is
        accounting (values for reductions, rows for assembly), not
        recomputation — and remaining work never waits on it because
        replays are the cheapest jobs in the batch by construction.
        """
        for index in sorted(completed_set):
            outcome = execute_job(tasks[index])
            if isinstance(outcome, JobFailure):
                outcome = replace(outcome, index=index)
            _land(index, outcome)

    remaining = [
        (index, job)
        for index, job in enumerate(tasks)
        if index not in completed_set
    ]
    if workers <= 1 or _in_daemon_process():
        workers = 1
        if warmup is not None:
            warmup()
        _replay_completed()
        for index, job in remaining:
            outcome = execute_job(job)
            if isinstance(outcome, JobFailure):
                outcome = replace(outcome, index=index)
            _land(index, outcome)
    else:
        _replay_completed()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        with context.Pool(
            processes=workers, initializer=_init_worker, initargs=(warmup,)
        ) as pool:
            # imap_unordered (not map): completions stream back as they
            # finish, so the parent persists each one immediately even
            # while a slow job holds up earlier submission slots — and
            # reductions fire mid-batch, as soon as their group is in.
            for index, outcome in pool.imap_unordered(
                _execute_indexed, remaining
            ):
                _land(index, outcome)
    if checkpoint is not None:
        checkpoint.flush()
    landed = [o for o in outcomes if o is not None]
    result = finalize_outcomes(
        landed,
        workers=workers,
        store=store,
        on_error=on_error,
        reduction_outcomes=plan.outcomes,
    )
    result = replace(result, wall=time.perf_counter() - batch_start)
    if workers > 1:
        # Pool runs fill dist_metrics in the coordinator's shape so
        # executor footers render uniformly (serial stays None: one
        # process, nothing worth a per-worker breakdown).
        result = replace(
            result,
            dist_metrics=_pool_metrics(
                landed, time.perf_counter() - batch_start
            ),
        )
    return result
