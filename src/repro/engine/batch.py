"""Parallel batch driver: fan experiment jobs out across cores.

A :class:`Job` names a picklable top-level callable plus its arguments;
:func:`run_batch` executes a sequence of jobs either serially (``jobs=1``,
the reference path) or on a ``multiprocessing`` pool, returning values in
submission order together with per-job timings and merged kernel-cache
statistics.  The two paths are observationally identical: jobs must be
independent pure computations, so the only difference is wall-clock.

Worker caches: on fork-capable platforms every worker inherits the
parent's warm :data:`~repro.engine.cache.KERNEL_CACHE` at fork time; an
optional ``warmup`` callable runs once per worker for spawn platforms or
for priming beyond the parent's state.  Each job ships its cache-stats
delta back with its result, and the parent absorbs the deltas so global
statistics reflect work done everywhere.

Nested batches degrade gracefully: pool workers are daemonic and cannot
spawn their own pools, so a ``run_batch`` call inside a worker silently
runs serially instead of crashing.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from ..errors import EngineError
from .cache import KERNEL_CACHE, CacheStats

__all__ = ["Job", "JobResult", "JobError", "BatchResult", "run_batch"]


@dataclass(frozen=True)
class Job:
    """One unit of batch work: ``fn(*args, **kwargs)``.

    ``fn`` must be an importable module-level callable (pool workers
    receive jobs by pickling) and, like every cached kernel, must be a
    pure function of its arguments.
    """

    name: str
    fn: Callable
    args: tuple = ()
    kwargs: Mapping = field(default_factory=dict)

    def run(self) -> object:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class JobResult:
    """A job's value plus its observability payload."""

    name: str
    value: object
    elapsed: float
    stats: CacheStats
    """Kernel-cache activity attributable to this job alone."""


class JobError(EngineError):
    """A batch job raised; the original exception is chained as cause."""

    def __init__(self, job_name: str, message: str):
        super().__init__(f"job {job_name!r} failed: {message}")
        self.job_name = job_name


@dataclass(frozen=True)
class BatchResult:
    """All job results in submission order, plus merged statistics."""

    results: tuple[JobResult, ...]
    stats: CacheStats
    jobs: int
    """Worker processes actually used (1 = serial reference path)."""

    @property
    def values(self) -> tuple[object, ...]:
        return tuple(r.value for r in self.results)

    @property
    def elapsed(self) -> float:
        """Total compute time summed over jobs (not wall-clock)."""
        return sum(r.elapsed for r in self.results)


def _execute_job(job: Job) -> JobResult | tuple[str, str, BaseException]:
    """Run one job, measuring wall time and the cache-stats delta."""
    before = KERNEL_CACHE.stats()
    start = time.perf_counter()
    try:
        value = job.run()
    except Exception as exc:
        # Re-raised as JobError in the parent; KeyboardInterrupt/SystemExit
        # propagate so Ctrl-C keeps its semantics on the serial path.
        return (job.name, f"{type(exc).__name__}: {exc}", exc)
    elapsed = time.perf_counter() - start
    delta = KERNEL_CACHE.stats().delta_since(before)
    return JobResult(name=job.name, value=value, elapsed=elapsed, stats=delta)


def _init_worker(warmup: Callable[[], object] | None) -> None:
    if warmup is not None:
        warmup()


def _in_daemon_process() -> bool:
    return multiprocessing.current_process().daemon


def run_batch(
    tasks: Sequence[Job],
    /,
    *,
    jobs: int = 1,
    warmup: Callable[[], object] | None = None,
) -> BatchResult:
    """Execute ``tasks`` and return their results in submission order.

    Parameters
    ----------
    tasks:
        The jobs to run.  Results are returned positionally; a failing
        job raises :class:`JobError` with the worker exception chained.
    jobs:
        Worker process count.  ``1`` (default) runs serially in-process —
        the reference path the parallel path must match exactly.  Values
        above the task count are clamped; inside an existing worker the
        call degrades to serial.
    warmup:
        Optional picklable zero-argument callable run once per worker
        before any job, for cache priming (fork workers already inherit
        the parent's warm cache; this matters on spawn platforms or when
        priming beyond the parent's state).
    """
    tasks = list(tasks)
    if jobs < 1:
        raise EngineError(f"jobs must be positive, got {jobs}")
    workers = min(jobs, len(tasks))
    if workers <= 1 or _in_daemon_process():
        if warmup is not None:
            warmup()
        outcomes = [_execute_job(job) for job in tasks]
        workers = 1
    else:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        with context.Pool(
            processes=workers, initializer=_init_worker, initargs=(warmup,)
        ) as pool:
            outcomes = pool.map(_execute_job, tasks)
    results = []
    merged = CacheStats()
    for outcome in outcomes:
        if isinstance(outcome, tuple):
            name, message, cause = outcome
            raise JobError(name, message) from cause
        results.append(outcome)
        merged = merged.merge(outcome.stats)
    if workers > 1:
        # Worker processes mutated their own cache copies; fold their
        # statistics into the parent so cache-stats reports see them.
        KERNEL_CACHE.absorb(merged)
    return BatchResult(results=tuple(results), stats=merged, jobs=workers)
