"""Process-global memo store for the expensive kernels.

:class:`KernelCache` is a size-bounded LRU mapping ``(kernel, key)`` pairs
to computed values, with per-kernel hit/miss/eviction counters.  The
:func:`cached_kernel` decorator routes a function through the global
:data:`KERNEL_CACHE`; each decorated function supplies a ``key`` callable
that maps its arguments to a hashable cache key (usually built from the
canonical graph keys of :mod:`~repro.engine.canonical`).

Cached kernels must be pure and must return values the caller will not
mutate (ints, tuples, frozen dataclasses); the cache hands back the stored
object itself, not a copy.

The cache is deliberately process-local.  Under :func:`~repro.engine.batch.
run_batch` each worker inherits the parent's warm cache at ``fork`` time,
accumulates its own statistics, and ships the per-job deltas back to the
parent, which absorbs them so that ``python -m repro cache-stats`` and the
experiment table footers observe the whole run.

Second tier: when the persistent result store (:mod:`repro.store`) is
active, a kernel miss falls through to it *before* computing, and freshly
computed results are written back — so a brand-new process starts warm
against work any previous process already did.  Each kernel carries a
*version* (explicit ``@cached_kernel(version=...)`` or a hash of its
source) that is part of the store identity, ensuring an edited kernel
never reads results computed by its former implementation.  The store is
consulted only on the enabled-cache path: :func:`cache_disabled` and
``REPRO_NO_CACHE`` bypass *all* memoization tiers, keeping the
uncached reference semantics byte-exact.
"""

from __future__ import annotations

import hashlib
import inspect
import os
from collections import OrderedDict
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from threading import RLock

from ..obs.trace import TRACER

__all__ = [
    "CacheStats",
    "KernelCache",
    "KERNEL_CACHE",
    "KERNEL_VERSIONS",
    "KERNEL_VERSION_VARIANTS",
    "cached_kernel",
    "cache_disabled",
    "kernel_source_version",
]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache activity, mergeable across workers."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    by_kernel: tuple[tuple[str, int, int], ...] = ()
    """Per-kernel ``(name, hits, misses)`` rows, sorted by name."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine two snapshots (e.g. parent stats + a worker delta)."""
        merged: dict[str, list[int]] = {}
        for name, hits, misses in self.by_kernel + other.by_kernel:
            row = merged.setdefault(name, [0, 0])
            row[0] += hits
            row[1] += misses
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            entries=max(self.entries, other.entries),
            by_kernel=tuple(
                (name, row[0], row[1]) for name, row in sorted(merged.items())
            ),
        )

    def delta_since(self, baseline: "CacheStats") -> "CacheStats":
        """Activity between ``baseline`` and this snapshot."""
        base = {name: (h, m) for name, h, m in baseline.by_kernel}
        rows = []
        for name, hits, misses in self.by_kernel:
            bh, bm = base.get(name, (0, 0))
            if hits - bh or misses - bm:
                rows.append((name, hits - bh, misses - bm))
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            evictions=self.evictions - baseline.evictions,
            entries=self.entries,
            by_kernel=tuple(rows),
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (``cache-stats --json`` and CI)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
            "by_kernel": [
                {"kernel": name, "hits": h, "misses": m}
                for name, h, m in self.by_kernel
            ],
        }

    def as_dict(self) -> dict:
        """Alias for :meth:`to_dict` — the unified stats-surface name
        shared with ``StoreStats`` and the dist metrics (what the
        :class:`repro.obs.MetricsRegistry` providers call)."""
        return self.to_dict()

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"kernel cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.entries} entries, "
            f"{self.evictions} evictions"
        ]
        for name, hits, misses in self.by_kernel:
            total = hits + misses
            rate = hits / total if total else 0.0
            lines.append(f"  {name}: {hits}/{total} hits ({rate:.0%})")
        return "\n".join(lines)


@dataclass
class _KernelCounters:
    hits: int = 0
    misses: int = 0


class KernelCache:
    """Size-bounded LRU memo store with per-kernel statistics.

    Parameters
    ----------
    max_entries:
        Upper bound on stored values; the least recently used entry is
        evicted first.  The default comfortably holds every kernel result
        of a full experiment run while bounding worst-case memory.
    enabled:
        Master switch; when False every lookup misses and nothing is
        stored (used by the equivalence tests and ``REPRO_NO_CACHE``).
    """

    def __init__(self, max_entries: int = 1 << 16, enabled: bool = True):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.enabled = enabled
        self._data: OrderedDict[tuple, object] = OrderedDict()
        self._kernels: dict[str, _KernelCounters] = {}
        self._evictions = 0
        self._absorbed = CacheStats()
        self._lock = RLock()

    # ------------------------------------------------------------------
    def lookup(self, kernel: str, key: object) -> object:
        """Return the stored value or the module-private miss sentinel."""
        with self._lock:
            counters = self._kernels.setdefault(kernel, _KernelCounters())
            if not self.enabled:
                counters.misses += 1
                return _MISSING
            full_key = (kernel, key)
            value = self._data.get(full_key, _MISSING)
            if value is _MISSING:
                counters.misses += 1
            else:
                counters.hits += 1
                self._data.move_to_end(full_key)
            return value

    def store(self, kernel: str, key: object, value: object) -> None:
        """Insert a computed value, evicting LRU entries when full."""
        if not self.enabled:
            return
        with self._lock:
            self._data[(kernel, key)] = value
            self._data.move_to_end((kernel, key))
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        with self._lock:
            self._data.clear()
            self._kernels.clear()
            self._evictions = 0
            self._absorbed = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Snapshot of all activity, including absorbed worker deltas."""
        with self._lock:
            local = CacheStats(
                hits=sum(c.hits for c in self._kernels.values()),
                misses=sum(c.misses for c in self._kernels.values()),
                evictions=self._evictions,
                entries=len(self._data),
                by_kernel=tuple(
                    (name, c.hits, c.misses)
                    for name, c in sorted(self._kernels.items())
                ),
            )
            return local.merge(self._absorbed)

    def absorb(self, delta: CacheStats) -> None:
        """Fold a worker's statistics delta into this cache's totals."""
        with self._lock:
            self._absorbed = self._absorbed.merge(
                CacheStats(
                    hits=delta.hits,
                    misses=delta.misses,
                    evictions=delta.evictions,
                    by_kernel=delta.by_kernel,
                )
            )

    @contextmanager
    def disabled(self):
        """Context manager: run with the cache switched off."""
        previous = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = previous


#: The process-global cache every :func:`cached_kernel` routes through.
KERNEL_CACHE = KernelCache(enabled=not os.environ.get("REPRO_NO_CACHE"))

#: Registry of every decorated kernel's *base* implementation version,
#: populated at decoration time.  The persistent store uses it to refuse
#: results of other implementations and to garbage-collect stale rows
#: (``python -m repro store vacuum``).
KERNEL_VERSIONS: dict[str, str] = {}

#: Every store version a kernel may legitimately write, populated at
#: decoration time.  Kernels without declared variants map to a 1-tuple of
#: their base version; kernels decorated with ``variants=`` (e.g. the CSP
#: kernels, one entry per compute backend) map to every
#: ``"{base}+{suffix}"`` combination, so the store's vacuum/staleness
#: logic keeps rows of every backend rather than only the default one.
KERNEL_VERSION_VARIANTS: dict[str, tuple[str, ...]] = {}


def cache_disabled():
    """Context manager disabling the global :data:`KERNEL_CACHE`."""
    return KERNEL_CACHE.disabled()


def kernel_source_version(fn: Callable) -> str:
    """Default kernel version: a short hash of the function's source.

    Any edit to the kernel body changes the version, orphaning its stored
    results — the safe default.  Kernels whose semantics are stable across
    cosmetic edits may pin ``@cached_kernel(version="1")`` instead so a
    reformat does not cold-start the store.  Falls back to the qualified
    name when source is unavailable (REPLs, frozen builds).
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):  # pragma: no cover - no source available
        source = fn.__qualname__
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


def _second_tier():
    """The active persistent store, or ``None``.

    Imported lazily so the engine stays importable without the store
    package and the store stays importable without the engine; after the
    first call this is a ``sys.modules`` dictionary hit.
    """
    from .. import store as result_store

    return result_store.active_store()


def cached_kernel(
    name: str | None = None,
    *,
    key: Callable[..., object] | None = None,
    cache: KernelCache | None = None,
    version: str | None = None,
    variant: Callable[..., str] | None = None,
    variants: Iterable[str] = (),
):
    """Decorator memoizing a pure kernel in the global :class:`KernelCache`.

    Parameters
    ----------
    name:
        Statistics label; defaults to the function's qualified name.
    key:
        Called with the kernel's arguments, must return a hashable cache
        key.  Defaults to ``(*args, *sorted(kwargs))`` verbatim, which is
        only correct when every argument is hashable and canonical —
        kernels taking graphs should build keys from
        :func:`~repro.engine.canonical.adjacency_key` /
        :func:`~repro.engine.canonical.iso_key`.
    cache:
        Override the store (tests); defaults to :data:`KERNEL_CACHE`.
    version:
        Implementation version for the persistent second tier; defaults
        to :func:`kernel_source_version`.  Bump an explicit version on
        any semantic change, or keep the default to invalidate on every
        source edit.
    variant:
        Optional callable over the kernel's arguments returning a short
        suffix naming the *implementation variant* this call runs under
        (e.g. the resolved CSP compute backend).  The suffix joins the
        store version as ``"{version}+{suffix}"`` and scopes the
        in-process memo key too, so two variants never share results in
        either tier even though their cache *key* (the mathematical
        question) is identical.
    variants:
        The full set of suffixes ``variant`` may return, declared up
        front so :data:`KERNEL_VERSION_VARIANTS` can register every
        live store version for vacuum/staleness accounting.

    The undecorated function stays reachable via ``__wrapped__``.
    """

    def decorate(fn):
        kernel = name or fn.__qualname__
        kernel_version = (
            str(version) if version is not None else kernel_source_version(fn)
        )
        KERNEL_VERSIONS[kernel] = kernel_version
        declared = tuple(variants)
        KERNEL_VERSION_VARIANTS[kernel] = (
            tuple(f"{kernel_version}+{suffix}" for suffix in declared)
            if declared
            else (kernel_version,)
        )
        store = cache

        def _identity(args, kwargs):
            """(memo_key, store_key, store_version) for one call."""
            cache_key = (
                key(*args, **kwargs)
                if key is not None
                else (args, tuple(sorted(kwargs.items())))
            )
            if variant is None:
                return cache_key, cache_key, kernel_version
            suffix = variant(*args, **kwargs)
            return (
                (suffix, cache_key),
                cache_key,
                f"{kernel_version}+{suffix}",
            )

        def _invoke(args, kwargs):
            """One kernel call; returns ``(value, tier)``.

            ``tier`` names which memoization layer served the call —
            ``memo`` / ``seed`` / ``store`` / ``remote`` / ``computed``
            (or ``bypass`` when caching is off) — and is what the trace
            spans record as hit attribution.
            """
            target = store if store is not None else KERNEL_CACHE
            if not target.enabled:
                # Count the bypass as a miss so disabled runs stay
                # observable.  The persistent tier is bypassed too:
                # disabling the cache means "compute the reference value".
                target.lookup(kernel, None)
                return fn(*args, **kwargs), "bypass"
            memo_key, store_key, store_version = _identity(args, kwargs)
            value = target.lookup(kernel, memo_key)
            if value is not _MISSING:
                return value, "memo"
            tier = _second_tier()
            if tier is not None:
                from ..store.backend import MISS as _STORE_MISS

                stored = tier.load(kernel, store_version, store_key)
                if stored is _STORE_MISS:
                    value = fn(*args, **kwargs)
                    tier.save(kernel, store_version, store_key, value)
                    served = "computed"
                else:
                    value = stored
                    # The store knows which of its layers answered
                    # (pending/sqlite, seed overlay, remote fallthrough).
                    served = tier.last_load_tier() or "store"
            else:
                value = fn(*args, **kwargs)
                served = "computed"
            target.store(kernel, memo_key, value)
            return value, served

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not TRACER.enabled:
                return _invoke(args, kwargs)[0]
            with TRACER.span(f"kernel:{kernel}", cat="kernel") as sp:
                value, served = _invoke(args, kwargs)
                sp.set(tier=served)
            return value

        def seed(value, *args, **kwargs):
            """Install a known result for these arguments without computing.

            For callers that assembled this kernel's result from
            independently computed parts (e.g. a sweep reduction merging
            per-``k`` sub-verdicts into the monolithic shard verdict):
            the merged value is banked in the memo cache and — when the
            persistent store is active — written back under this
            kernel's ``(name, version, key)`` identity, so later calls
            are indistinguishable from a computed-and-cached result.

            If either tier already holds a value for the key, that value
            wins and nothing is overwritten (results are pure functions
            of the key, so any banked value is already the right one).
            Returns True when this call installed ``value``; False when
            the caches are disabled or the key was already banked.

            Statistics: seeding counts like the lookup-then-install it
            is — a cold seed books a miss plus a store write (the merge
            *did* produce and bank a fresh row), an already-banked key
            books a hit.  Kernel counters therefore stay consistent
            with the write counts observers see.
            """
            target = store if store is not None else KERNEL_CACHE
            if not target.enabled:
                return False
            memo_key, store_key, store_version = _identity(args, kwargs)
            if target.lookup(kernel, memo_key) is not _MISSING:
                return False
            installed = True
            tier = _second_tier()
            if tier is not None:
                from ..store.backend import MISS as _STORE_MISS

                stored = tier.load(kernel, store_version, store_key)
                if stored is _STORE_MISS:
                    tier.save(kernel, store_version, store_key, value)
                else:
                    value = stored
                    installed = False
            target.store(kernel, memo_key, value)
            return installed

        def peek(*args, **kwargs):
            """Look the banked value up without ever computing it.

            Returns ``(True, value)`` when either tier holds a result for
            these arguments, ``(False, None)`` otherwise — including when
            the caches are disabled, since a bypassed run must not observe
            banked state.  A store-tier hit is promoted into the memo
            cache so repeated peeks (the planner calls this once per
            class) cost one SQLite read total, not one per call.

            This is the read half of :func:`seed` for kernels that are
            *observation banks* rather than computations: values arrive
            only via ``seed`` (e.g. measured per-class wall-clocks) and
            are consulted via ``peek``, so a missing observation is an
            ordinary answer, not a trigger to run the kernel body.
            """
            target = store if store is not None else KERNEL_CACHE
            if not target.enabled:
                return False, None
            memo_key, store_key, store_version = _identity(args, kwargs)
            value = target.lookup(kernel, memo_key)
            if value is not _MISSING:
                return True, value
            tier = _second_tier()
            if tier is not None:
                from ..store.backend import MISS as _STORE_MISS

                stored = tier.load(kernel, store_version, store_key)
                if stored is not _STORE_MISS:
                    target.store(kernel, memo_key, stored)
                    return True, stored
            return False, None

        wrapper.kernel_name = kernel
        wrapper.kernel_version = kernel_version
        wrapper.seed = seed
        wrapper.peek = peek
        return wrapper

    return decorate
