"""Combined bound reports: the solvability interval of a model.

For a generator set and round count, collect every applicable upper and
lower bound, and summarise them as an interval
``(best impossible k, best solvable k]`` together with a tightness flag.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..engine.batch import Job, run_batch
from ..errors import GraphError
from ..graphs.digraph import Digraph
from .lower import (
    lower_bound_general,
    lower_bound_general_multi_round,
    lower_bound_simple,
    lower_bound_simple_multi_round,
)
from .results import Bound, BoundKind
from .upper import (
    all_covering_upper_bounds,
    best_upper_bound,
    upper_bound_gamma_eq,
    upper_bound_gamma_eq_multi_round,
    upper_bound_simple,
    upper_bound_simple_multi_round,
)

__all__ = ["BoundReport", "bound_report", "bound_report_many"]


def _dedup(bounds: list[Bound]) -> list[Bound]:
    seen = set()
    result = []
    for b in bounds:
        key = (b.kind, b.k, b.rounds, b.theorem, b.oblivious_only)
        if key not in seen:
            seen.add(key)
            result.append(b)
    return result


@dataclass(frozen=True)
class BoundReport:
    """All bounds known for a model at a given round count.

    ``best_upper.k``-set agreement is solvable; ``best_lower.k``-set
    agreement is not (when non-vacuous).  ``tight`` means the interval has
    collapsed: ``best_upper.k == best_lower.k + 1``.
    """

    n: int
    rounds: int
    generator_count: int
    upper_bounds: tuple[Bound, ...]
    lower_bounds: tuple[Bound, ...]

    @property
    def best_upper(self) -> Bound:
        """The smallest certified solvable ``k``."""
        return min(self.upper_bounds, key=lambda b: b.k)

    @property
    def best_lower(self) -> Bound:
        """The largest certified impossible ``k`` (possibly vacuous)."""
        return max(self.lower_bounds, key=lambda b: b.k)

    @property
    def consistent(self) -> bool:
        """True when no lower bound contradicts a verified upper bound.

        The paper's Thm 5.4 formula *can* overclaim on some simple models
        built from graph powers (see EXPERIMENTS.md, erratum for ↑C6²):
        its ``t + M_t - 2`` term may assert impossibility below ``γ(G)``
        although Thm 3.2's algorithm demonstrably solves ``γ(G)``-set
        agreement.  We surface that as ``consistent = False`` instead of
        silently reporting a "tight" collapse.
        """
        return self.best_lower.k < self.best_upper.k

    @property
    def tight(self) -> bool:
        """True when upper and lower bounds meet consistently."""
        return self.consistent and self.best_upper.k == self.best_lower.k + 1

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"model: n={self.n}, {self.generator_count} generator(s), "
            f"{self.rounds} round(s)"
        ]
        for b in sorted(self.upper_bounds, key=lambda b: (b.k, b.theorem)):
            lines.append(f"  [upper] {b.describe()}")
        for b in sorted(self.lower_bounds, key=lambda b: (-b.k, b.theorem)):
            lines.append(f"  [lower] {b.describe()}")
        if not self.consistent:
            status = "INCONSISTENT (lower bound overclaims; see erratum)"
        elif self.tight:
            status = "TIGHT"
        else:
            status = "gap"
        lines.append(
            f"  => solvable at k={self.best_upper.k}, impossible at "
            f"k={self.best_lower.k} ({status})"
        )
        return "\n".join(lines)


def bound_report(
    generators: Iterable[Digraph],
    rounds: int = 1,
    semantics: str = "pointwise",
) -> BoundReport:
    """Collect every applicable paper bound for the model of ``generators``."""
    generators = tuple(generators)
    if not generators:
        raise GraphError("need at least one generator")
    n = generators[0].n
    uppers: list[Bound] = []
    lowers: list[Bound] = []
    if rounds == 1:
        if len(generators) == 1:
            uppers.append(upper_bound_simple(generators[0]))
            lowers.append(lower_bound_simple(generators[0]))
        uppers.append(upper_bound_gamma_eq(generators))
        uppers.extend(all_covering_upper_bounds(generators))
        lowers.append(lower_bound_general(generators, semantics))
    else:
        if len(generators) == 1:
            uppers.append(upper_bound_simple_multi_round(generators[0], rounds))
            lowers.append(
                lower_bound_simple_multi_round(generators[0], rounds)
            )
        uppers.append(upper_bound_gamma_eq_multi_round(generators, rounds))
        uppers.append(best_upper_bound(generators, rounds))
        lowers.append(
            lower_bound_general_multi_round(generators, rounds, semantics)
        )
    # Deduplicate identical records (Bound.details is a dict, so dedup by
    # the provenance key rather than by hashing).
    uppers = _dedup(uppers)
    lowers = _dedup(lowers)
    return BoundReport(
        n=n,
        rounds=rounds,
        generator_count=len(generators),
        upper_bounds=tuple(uppers),
        lower_bounds=tuple(lowers),
    )


def bound_report_many(
    models: Iterable[Iterable[Digraph]],
    rounds: int = 1,
    semantics: str = "pointwise",
    jobs: int = 1,
    executor=None,
) -> list[BoundReport]:
    """Batch :func:`bound_report` over many models, optionally in parallel.

    ``models`` is an iterable of generator sets; reports come back in the
    same order.  ``jobs`` is the worker-process count handed to
    :func:`repro.engine.batch.run_batch` — ``jobs=1`` is the serial
    reference path, and any value produces identical reports; an
    ``executor`` (:func:`repro.dist.make_executor`) overrides ``jobs``
    and can fan the reports out across hosts, still with identical
    results.  Kernel results memoized while one model is processed are
    reused by every later model that shares graphs (within a worker),
    which is the common case for sweeps over overlapping families.
    """
    prepared = [tuple(generators) for generators in models]
    tasks = [
        Job(
            name=f"bound_report[{index}]",
            fn=bound_report,
            args=(generators,),
            kwargs={"rounds": rounds, "semantics": semantics},
        )
        for index, generators in enumerate(prepared)
    ]
    return list(run_batch(tasks, jobs=jobs, executor=executor).values)
