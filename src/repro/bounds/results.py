"""Bound records with provenance.

Every bound function returns a :class:`Bound` that remembers which theorem
produced it and the combinatorial numbers that witnessed it, so experiment
tables can cite the paper line by line.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["BoundKind", "Bound"]


class BoundKind(Enum):
    """Whether a bound asserts solvability or impossibility."""

    UPPER = "upper"  # k-set agreement IS solvable
    LOWER = "lower"  # k-set agreement is NOT solvable


@dataclass(frozen=True)
class Bound:
    """A provenance-carrying bound on k-set agreement.

    For ``kind == UPPER``: ``k``-set agreement is solvable (in ``rounds``
    rounds).  For ``kind == LOWER``: ``k``-set agreement is *not* solvable;
    ``k == 0`` encodes a vacuous lower bound (no impossibility obtained).
    """

    kind: BoundKind
    k: int
    rounds: int
    theorem: str
    oblivious_only: bool = False
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be non-negative, got {self.k}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be positive, got {self.rounds}")

    @property
    def vacuous(self) -> bool:
        """True for lower bounds that rule out nothing."""
        return self.kind is BoundKind.LOWER and self.k == 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        scope = " (oblivious algorithms)" if self.oblivious_only else ""
        if self.kind is BoundKind.UPPER:
            return (
                f"{self.k}-set agreement solvable in {self.rounds} round(s) "
                f"[Thm {self.theorem}]{scope}"
            )
        if self.vacuous:
            return f"no impossibility [Thm {self.theorem}]{scope}"
        return (
            f"{self.k}-set agreement impossible in {self.rounds} round(s) "
            f"[Thm {self.theorem}]{scope}"
        )
