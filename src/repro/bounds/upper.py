"""Upper bounds on k-set agreement for closed-above models (Secs 3 and 6).

Each function returns a :class:`~repro.bounds.results.Bound` asserting that
``k``-set agreement *is* solvable, witnessed by a concrete algorithm from
:mod:`repro.agreement.algorithms` (the verification package replays them).
"""

from __future__ import annotations

from collections.abc import Iterable

from .._bitops import bits_tuple
from ..combinatorics.covering import covering_number_of_set
from ..combinatorics.domination import equal_domination_number_of_set
from ..combinatorics.sequences import (
    rounds_to_reach_all,
    rounds_to_reach_all_of_set,
)
from ..errors import GraphError
from ..graphs.digraph import Digraph
from ..graphs.dominating import domination_number, minimum_dominating_set
from ..graphs.operations import graph_power, set_power
from .results import Bound, BoundKind

__all__ = [
    "upper_bound_simple",
    "upper_bound_gamma_eq",
    "upper_bound_covering",
    "all_covering_upper_bounds",
    "upper_bound_simple_multi_round",
    "upper_bound_gamma_eq_multi_round",
    "upper_bound_covering_multi_round",
    "upper_bound_covering_sequence",
    "upper_bound_covering_sequence_of_set",
    "best_upper_bound",
]


def upper_bound_simple(generator: Digraph) -> Bound:
    """Thm 3.2: ``γ(G)``-set agreement in one round on ``↑G``."""
    dominating = minimum_dominating_set(generator)
    gamma = len(bits_tuple(dominating))
    return Bound(
        kind=BoundKind.UPPER,
        k=gamma,
        rounds=1,
        theorem="3.2",
        details={"gamma": gamma, "dominating_set": bits_tuple(dominating)},
    )


def upper_bound_gamma_eq(generators: Iterable[Digraph]) -> Bound:
    """Thm 3.4 / Cor 3.5: ``γ_eq(S)``-set agreement in one round."""
    generators = _as_tuple(generators)
    gamma_eq = equal_domination_number_of_set(generators)
    return Bound(
        kind=BoundKind.UPPER,
        k=gamma_eq,
        rounds=1,
        theorem="3.4",
        details={"gamma_eq": gamma_eq},
    )


def upper_bound_covering(generators: Iterable[Digraph], i: int) -> Bound:
    """Thm 3.7 / Cor 3.8: ``(i + n - cov_i(S))``-set agreement in one round.

    Valid for ``i ∈ [1, γ_eq(S))``; the paper's FloodMin analysis: the ``i``
    smallest values reach at least ``cov_i(S)`` processes, the others are
    written off.
    """
    generators = _as_tuple(generators)
    n = generators[0].n
    gamma_eq = equal_domination_number_of_set(generators)
    if not 1 <= i < gamma_eq:
        raise GraphError(
            f"covering bound needs 1 <= i < γ_eq(S) = {gamma_eq}, got i={i}"
        )
    cov = covering_number_of_set(generators, i)
    return Bound(
        kind=BoundKind.UPPER,
        k=i + (n - cov),
        rounds=1,
        theorem="3.7",
        details={"i": i, "cov_i": cov, "n": n},
    )


def all_covering_upper_bounds(generators: Iterable[Digraph]) -> list[Bound]:
    """Thm 3.7 swept over the full valid range of ``i``."""
    generators = _as_tuple(generators)
    gamma_eq = equal_domination_number_of_set(generators)
    return [
        upper_bound_covering(generators, i) for i in range(1, gamma_eq)
    ]


# ----------------------------------------------------------------------
# Multi-round (Sec 6.2)
# ----------------------------------------------------------------------

def upper_bound_simple_multi_round(generator: Digraph, rounds: int) -> Bound:
    """Thm 6.3: ``γ(G^r)``-set agreement in ``r`` rounds on ``↑G``."""
    _check_rounds(rounds)
    power = graph_power(generator, rounds)
    gamma = domination_number(power)
    return Bound(
        kind=BoundKind.UPPER,
        k=gamma,
        rounds=rounds,
        theorem="6.3",
        details={"gamma_of_power": gamma},
    )


def upper_bound_gamma_eq_multi_round(
    generators: Iterable[Digraph], rounds: int
) -> Bound:
    """Thm 6.4: ``γ_eq(S^r)``-set agreement in ``r`` rounds."""
    _check_rounds(rounds)
    generators = _as_tuple(generators)
    power = set_power(generators, rounds)
    gamma_eq = equal_domination_number_of_set(power)
    return Bound(
        kind=BoundKind.UPPER,
        k=gamma_eq,
        rounds=rounds,
        theorem="6.4",
        details={"gamma_eq_of_power": gamma_eq, "power_size": len(power)},
    )


def upper_bound_covering_multi_round(
    generators: Iterable[Digraph], rounds: int, i: int
) -> Bound:
    """Thm 6.5: ``(i + n - cov_i(S^r))``-set agreement in ``r`` rounds."""
    _check_rounds(rounds)
    generators = _as_tuple(generators)
    n = generators[0].n
    power = tuple(set_power(generators, rounds))
    gamma_eq = equal_domination_number_of_set(power)
    if not 1 <= i < gamma_eq:
        raise GraphError(
            f"covering bound needs 1 <= i < γ_eq(S^r) = {gamma_eq}, got i={i}"
        )
    cov = covering_number_of_set(power, i)
    return Bound(
        kind=BoundKind.UPPER,
        k=i + (n - cov),
        rounds=rounds,
        theorem="6.5",
        details={"i": i, "cov_i_of_power": cov, "power_size": len(power)},
    )


def upper_bound_covering_sequence(generator: Digraph, i: int) -> Bound | None:
    """Thm 6.7: ``i``-set agreement once the covering sequence hits ``n``.

    Returns the bound with the number of rounds the sequence needed, or
    None when the sequence stalls (the theorem is silent then).
    """
    rounds = rounds_to_reach_all(generator, i)
    if rounds is None:
        return None
    return Bound(
        kind=BoundKind.UPPER,
        k=i,
        rounds=rounds,
        theorem="6.7",
        details={"i": i, "rounds_needed": rounds},
    )


def upper_bound_covering_sequence_of_set(
    generators: Iterable[Digraph], i: int
) -> Bound | None:
    """Thm 6.9: set version of the covering-sequence bound."""
    generators = _as_tuple(generators)
    rounds = rounds_to_reach_all_of_set(generators, i)
    if rounds is None:
        return None
    return Bound(
        kind=BoundKind.UPPER,
        k=i,
        rounds=rounds,
        theorem="6.9",
        details={"i": i, "rounds_needed": rounds},
    )


def best_upper_bound(generators: Iterable[Digraph], rounds: int = 1) -> Bound:
    """The smallest ``k`` any of the paper's upper bounds certifies.

    Combines Thm 3.2/6.3 (when simple), Thm 3.4/6.4 and the Thm 3.7/6.5
    sweep at the given round count.
    """
    generators = _as_tuple(generators)
    candidates: list[Bound] = []
    if rounds == 1:
        if len(generators) == 1:
            candidates.append(upper_bound_simple(generators[0]))
        candidates.append(upper_bound_gamma_eq(generators))
        candidates.extend(all_covering_upper_bounds(generators))
    else:
        if len(generators) == 1:
            candidates.append(
                upper_bound_simple_multi_round(generators[0], rounds)
            )
        candidates.append(upper_bound_gamma_eq_multi_round(generators, rounds))
        power = tuple(set_power(generators, rounds))
        gamma_eq = equal_domination_number_of_set(power)
        for i in range(1, gamma_eq):
            candidates.append(
                upper_bound_covering_multi_round(generators, rounds, i)
            )
    return min(candidates, key=lambda b: b.k)


def _as_tuple(generators: Iterable[Digraph]) -> tuple[Digraph, ...]:
    generators = tuple(generators)
    if not generators:
        raise GraphError("need at least one generator")
    return generators


def _check_rounds(rounds: int) -> None:
    if rounds < 1:
        raise GraphError(f"rounds must be positive, got {rounds}")
