"""Executable versions of every bound theorem in the paper."""

from .lower import (
    best_lower_bound,
    lower_bound_general,
    lower_bound_general_multi_round,
    lower_bound_simple,
    lower_bound_simple_multi_round,
    lower_bound_star_unions,
    lower_bound_symmetric,
)
from .report import BoundReport, bound_report, bound_report_many
from .results import Bound, BoundKind
from .upper import (
    all_covering_upper_bounds,
    best_upper_bound,
    upper_bound_covering,
    upper_bound_covering_multi_round,
    upper_bound_covering_sequence,
    upper_bound_covering_sequence_of_set,
    upper_bound_gamma_eq,
    upper_bound_gamma_eq_multi_round,
    upper_bound_simple,
    upper_bound_simple_multi_round,
)

__all__ = [
    "Bound",
    "BoundKind",
    "BoundReport",
    "bound_report",
    "bound_report_many",
    "best_lower_bound",
    "lower_bound_general",
    "lower_bound_general_multi_round",
    "lower_bound_simple",
    "lower_bound_simple_multi_round",
    "lower_bound_star_unions",
    "lower_bound_symmetric",
    "all_covering_upper_bounds",
    "best_upper_bound",
    "upper_bound_covering",
    "upper_bound_covering_multi_round",
    "upper_bound_covering_sequence",
    "upper_bound_covering_sequence_of_set",
    "upper_bound_gamma_eq",
    "upper_bound_gamma_eq_multi_round",
    "upper_bound_simple",
    "upper_bound_simple_multi_round",
]
