"""Lower bounds on k-set agreement for closed-above models (Secs 5 and 6.3).

The bounds are *stated* purely in terms of graph numbers; their paper proofs
go through combinatorial topology (pseudosphere connectivity + Lemma 4.17).
The :mod:`repro.verification` package confirms them independently by
exhaustive search over oblivious decision maps on small ``n``, and
:mod:`repro.topology` reproduces the connectivity computations themselves.

Erratum handled here: the body of Thm 6.10 reads "``(γ(G)-1)``-set agreement
is not solvable in ``r`` rounds", but its own proof (Appendix E) reduces to
the one-round bound on ``↑(G^r)``, i.e. ``γ(G^r) - 1`` — and the stated
version would contradict Thm 6.3 whenever ``γ(G^r) < γ(G)`` (e.g. directed
cycles).  We implement the proof's version.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..combinatorics.distributed import (
    distributed_domination_number,
    max_covering_coefficient,
)
from ..errors import GraphError
from ..graphs.digraph import Digraph
from ..graphs.dominating import domination_number
from ..graphs.operations import graph_power, set_power
from ..graphs.symmetry import symmetric_closure
from .results import Bound, BoundKind

__all__ = [
    "lower_bound_simple",
    "lower_bound_general",
    "lower_bound_symmetric",
    "lower_bound_simple_multi_round",
    "lower_bound_general_multi_round",
    "lower_bound_star_unions",
    "best_lower_bound",
]


def lower_bound_simple(generator: Digraph) -> Bound:
    """Thm 5.1 (from Castañeda et al.): ``k < γ(G)`` unsolvable on ``↑G``.

    Returned as the strongest impossible ``k``, namely ``γ(G) - 1``;
    ``γ(G) = 1`` gives a vacuous bound (0-set agreement is no task).
    """
    gamma = domination_number(generator)
    return Bound(
        kind=BoundKind.LOWER,
        k=gamma - 1,
        rounds=1,
        theorem="5.1",
        details={"gamma": gamma},
    )


def lower_bound_general(
    generators: Iterable[Digraph], semantics: str = "pointwise"
) -> Bound:
    """Thm 5.4: ``(l+1)``-set agreement unsolvable in one round, where

    ``l = min(γ_dist(S) - 2, min_t (t + M_t(S) - 2))`` over
    ``t ∈ [1, γ_dist(S) - 1]``.

    ``semantics`` selects the Def 5.2 reading (see
    :mod:`repro.combinatorics.distributed`); "pointwise" reproduces the
    paper's own worked examples.
    """
    generators = _as_tuple(generators)
    ell, numbers = _ell(generators, semantics)
    return Bound(
        kind=BoundKind.LOWER,
        k=max(ell + 1, 0),
        rounds=1,
        theorem="5.4",
        details=numbers,
    )


def lower_bound_symmetric(
    generator: Digraph, semantics: str = "pointwise"
) -> Bound:
    """Cor 5.5: Thm 5.4 applied to ``Sym(↑G)``.

    Computed directly on the symmetric closure; the corollary's closed-form
    coefficient ``⌊(n-t-1)/(t·(max-cov_t({G})-t))⌋`` is exercised separately
    in the tests against this value.
    """
    sym = tuple(symmetric_closure([generator]))
    bound = lower_bound_general(sym, semantics)
    return Bound(
        kind=BoundKind.LOWER,
        k=bound.k,
        rounds=1,
        theorem="5.5",
        details=dict(bound.details),
    )


def lower_bound_simple_multi_round(generator: Digraph, rounds: int) -> Bound:
    """Thm 6.10 (proof version): ``(γ(G^r)-1)``-set agreement unsolvable in
    ``r`` rounds on ``↑G`` by *oblivious* algorithms."""
    _check_rounds(rounds)
    gamma = domination_number(graph_power(generator, rounds))
    return Bound(
        kind=BoundKind.LOWER,
        k=gamma - 1,
        rounds=rounds,
        theorem="6.10",
        oblivious_only=True,
        details={"gamma_of_power": gamma},
    )


def lower_bound_general_multi_round(
    generators: Iterable[Digraph], rounds: int, semantics: str = "pointwise"
) -> Bound:
    """Thm 6.11: the Thm 5.4 formula evaluated on ``S^r`` (oblivious algos)."""
    _check_rounds(rounds)
    generators = _as_tuple(generators)
    power = tuple(set_power(generators, rounds))
    ell, numbers = _ell(power, semantics)
    numbers["power_size"] = len(power)
    return Bound(
        kind=BoundKind.LOWER,
        k=max(ell + 1, 0),
        rounds=rounds,
        theorem="6.11",
        oblivious_only=True,
        details=numbers,
    )


def lower_bound_star_unions(n: int, s: int, rounds: int = 1) -> Bound:
    """Thm 6.13: on the symmetric union-of-``s``-stars model,
    ``(n-s)``-set agreement is unsolvable (any ``r``, oblivious algorithms).

    The closed form ``l + 1 = n - s`` from the paper's Appendix G; the
    tests cross-check it against :func:`lower_bound_general` evaluated on
    the materialised model.
    """
    if not 1 <= s <= n:
        raise GraphError(f"need 1 <= s <= n, got s={s}, n={n}")
    _check_rounds(rounds)
    return Bound(
        kind=BoundKind.LOWER,
        k=n - s,
        rounds=rounds,
        theorem="6.13",
        oblivious_only=True,
        details={"n": n, "s": s, "gamma_dist": n - s + 1},
    )


def best_lower_bound(
    generators: Iterable[Digraph], rounds: int = 1, semantics: str = "pointwise"
) -> Bound:
    """The strongest impossibility any of the paper's lower bounds gives."""
    generators = _as_tuple(generators)
    candidates: list[Bound] = []
    if rounds == 1:
        if len(generators) == 1:
            candidates.append(lower_bound_simple(generators[0]))
        candidates.append(lower_bound_general(generators, semantics))
    else:
        if len(generators) == 1:
            candidates.append(
                lower_bound_simple_multi_round(generators[0], rounds)
            )
        candidates.append(
            lower_bound_general_multi_round(generators, rounds, semantics)
        )
    return max(candidates, key=lambda b: b.k)


def _ell(generators: tuple[Digraph, ...], semantics: str) -> tuple[int, dict]:
    gamma_dist = distributed_domination_number(generators, semantics)
    coefficients = {}
    terms = [gamma_dist - 2]
    for t in range(1, gamma_dist):
        m_t = max_covering_coefficient(generators, t, semantics)
        coefficients[t] = m_t
        terms.append(t + m_t - 2)
    ell = min(terms)
    numbers = {
        "gamma_dist": gamma_dist,
        "coefficients": coefficients,
        "ell": ell,
        "semantics": semantics,
    }
    return ell, numbers


def _as_tuple(generators: Iterable[Digraph]) -> tuple[Digraph, ...]:
    generators = tuple(generators)
    if not generators:
        raise GraphError("need at least one generator")
    return generators


def _check_rounds(rounds: int) -> None:
    if rounds < 1:
        raise GraphError(f"rounds must be positive, got {rounds}")
