"""The bench runner: measure every cell, attribute it, snapshot it.

One :func:`run_bench` call executes the selected scenarios' matrix
cells through the variance engine (:mod:`repro.bench.variance`) and
emits a **schema-versioned trajectory point** — the JSON committed as
``benchmarks/BENCH_<rev>.json`` and diffed by ``bench compare``.

Each cell is measured twice over:

* the *timed* repeats run untraced (tracing's per-span bookkeeping is
  small but nonzero; the quoted seconds stay honest);
* one extra *attributed* run executes with the tracer buffering
  in-process, and its :func:`repro.obs.summarize_events` digest — tier
  hit rates, self-time by category, straggler gap — is embedded under
  the cell's ``obs`` key, so the committed trajectory records *why* a
  number is what it is, not only that it is.

The snapshot schema (:data:`SCHEMA`) is part of the contract:
``bench compare`` refuses to diff across schema versions, and
:func:`validate_snapshot` is the single source of truth CI's
``bench-smoke`` job asserts against.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile

from ..obs import summarize_events
from ..obs.trace import TRACER
from .scenarios import CellRun, select_scenarios
from .variance import (
    DEFAULT_CONFIG,
    QUICK_CONFIG,
    Measurement,
    VarianceConfig,
    measure,
)

__all__ = [
    "SCHEMA",
    "list_scenarios",
    "run_bench",
    "validate_snapshot",
    "write_snapshot",
]

#: Snapshot schema identifier.  Bump the suffix on any incompatible
#: change to the cell shape — compare refuses cross-schema diffs.
SCHEMA = "repro-bench/1"

#: The trace-summary keys a cell embeds (the condensed attribution; the
#: full summary is a ``trace summary`` away for anyone holding a file).
_OBS_KEYS = (
    "wall",
    "kernel_calls",
    "tier_counts",
    "tier_rates",
    "self_by_category",
)


def _traced_once(run: CellRun) -> dict:
    """One extra run with the tracer buffering; returns the obs digest.

    The tracer is borrowed, not owned: previous enabled/path state is
    restored and any events already buffered by the surrounding process
    (a ``--trace`` CLI run) are put back afterwards.
    """
    previous_enabled = TRACER.enabled
    previous_path = TRACER.path
    stashed = TRACER.drain()
    TRACER.enabled = True
    TRACER.path = None
    try:
        if run.setup is not None:
            run.setup()
        run.fn()
        events = TRACER.drain()
    finally:
        TRACER.enabled = previous_enabled
        TRACER.path = previous_path
        TRACER.absorb(stashed)
    summary = summarize_events(events)
    digest = {key: summary[key] for key in _OBS_KEYS}
    straggler = summary.get("straggler")
    digest["straggler_gap"] = straggler["gap"] if straggler else None
    return digest


def _run_cell(scenario, run: CellRun, config: VarianceConfig) -> dict:
    if run.prepare is not None:
        run.prepare()
    try:
        measurement: Measurement = measure(
            run.fn, config=config, setup=run.setup
        )
        obs = _traced_once(run)
    finally:
        if run.cleanup is not None:
            run.cleanup()
    from ..config import config_fingerprint

    return {
        "scenario": scenario.name,
        "id": run.cell.cell_id,
        "cell": run.cell.to_dict(),
        # The run-identity digest (see repro.config): two trajectory
        # points are comparable exactly when their cell fingerprints
        # match, the same stamp sweeps put in traces and JSON reports.
        "config": config_fingerprint(run.cell.to_dict()),
        "repeats": measurement.repeats,
        "warmups": len(measurement.warmups),
        "converged": measurement.converged,
        "seconds": measurement.seconds_dict(),
        "obs": obs,
        "result": measurement.value,
    }


def run_bench(
    names=None,
    *,
    quick: bool = False,
    config: VarianceConfig | None = None,
    revision: str = "BENCH_8",
    progress=None,
) -> dict:
    """Run the selected scenarios' matrix and return the trajectory point.

    ``quick`` restricts every scenario to its quick cells and drops the
    repeat budget to :data:`QUICK_CONFIG` (unless ``config`` overrides
    it); ``progress`` is an optional callable receiving one line per
    cell as it lands (the CLI wires ``print`` to stderr through it).
    """
    scenarios = select_scenarios(names)
    if config is None:
        config = QUICK_CONFIG if quick else DEFAULT_CONFIG
    cells = []
    for scenario in scenarios:
        for cell in scenario.matrix(quick):
            run = scenario.build(cell)
            record = _run_cell(scenario, run, config)
            cells.append(record)
            if progress is not None:
                progress(
                    f"{scenario.name} [{cell.cell_id}]: "
                    f"median {record['seconds']['median']:.3f}s "
                    f"(cv {record['seconds']['cv']:.2f}, "
                    f"{record['repeats']} repeat(s))"
                )
    return {
        "schema": SCHEMA,
        "revision": revision,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "config": config.to_dict(),
        "cells": cells,
    }


def validate_snapshot(payload) -> list[str]:
    """Problems making ``payload`` an invalid trajectory point (empty = ok).

    The single schema authority: ``bench compare``'s loader and CI's
    ``bench-smoke`` assertion block both call this, so "valid" cannot
    mean different things in different places.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["snapshot is not a JSON object"]
    schema = payload.get("schema")
    if schema != SCHEMA:
        problems.append(f"schema is {schema!r}, expected {SCHEMA!r}")
    if not isinstance(payload.get("revision"), str):
        problems.append("missing revision string")
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        return problems + ["cells must be a non-empty list"]
    seen: set[tuple[str, str]] = set()
    for position, cell in enumerate(cells):
        where = f"cells[{position}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("scenario", "id"):
            if not isinstance(cell.get(key), str):
                problems.append(f"{where}: missing {key!r}")
        pair = (str(cell.get("scenario")), str(cell.get("id")))
        if pair in seen:
            problems.append(f"{where}: duplicate cell {pair}")
        seen.add(pair)
        if not isinstance(cell.get("repeats"), int) or cell.get(
            "repeats", 0
        ) < 1:
            problems.append(f"{where}: repeats must be a positive int")
        seconds = cell.get("seconds")
        if not isinstance(seconds, dict):
            problems.append(f"{where}: missing seconds object")
            continue
        for stat in ("min", "median", "mean", "iqr", "cv"):
            if not isinstance(seconds.get(stat), (int, float)):
                problems.append(f"{where}: seconds.{stat} missing")
        samples = seconds.get("samples")
        if not isinstance(samples, list) or not samples:
            problems.append(f"{where}: seconds.samples must be non-empty")
        obs = cell.get("obs")
        if obs is not None and not isinstance(obs, dict):
            problems.append(f"{where}: obs must be an object or null")
    return problems


def write_snapshot(payload: dict, path: str) -> None:
    """Write one trajectory point as stable, diff-friendly JSON (atomic)."""
    problems = validate_snapshot(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid snapshot: " + "; ".join(problems)
        )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".bench-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def list_scenarios(names=None, *, quick: bool = False) -> list[dict]:
    """The registry as JSON: what ``bench list`` prints and CI consumes."""
    return [
        scenario.to_dict(quick) for scenario in select_scenarios(names)
    ]
