"""The bench matrix: named scenarios × declared cells.

A **scenario** is one workload shape that matters to the frontier's
wall-clock (the E10 sweep, the heaviest ``n = 3`` class, the ``n = 4``
tail, store warm/cold, seeded dist); a **cell** is one point of the
declared ``{executor, workers, seeding, split-threshold, backend}``
matrix that scenario runs under.  The registry is static data — ``bench
list`` and CI read the same :data:`SCENARIOS` the runner executes, so
the docs cannot drift from what actually runs.

Every cell builder returns a :class:`CellRun` whose ``setup`` hook makes
repeats independent (cold kernel cache, fresh or deliberately warm
store) and whose ``fn`` returns a small JSON-able result — the verdicts
or row fingerprints — so a committed trajectory point can detect *result
drift* between revisions, not only slowdowns.

Isolation discipline (the contamination the old one-shot scripts had):
``prepare``/``cleanup`` bracket a cell with explicit store
configuration — never leaking a temp store into the next cell — and
``setup`` runs before **every** timed repeat, outside the timed window.
"""

from __future__ import annotations

import contextlib
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

__all__ = [
    "Cell",
    "CellRun",
    "SCENARIOS",
    "Scenario",
    "select_scenarios",
]


@dataclass(frozen=True)
class Cell:
    """One point of the bench matrix; its id keys trajectory comparisons."""

    executor: str = "serial"
    workers: int = 1
    seeding: str = "none"
    """Store posture: ``none`` (store off), ``cold`` (fresh rw store per
    repeat), ``warm`` (pre-populated rw store), ``seeded`` (warm
    coordinator store streamed to store-less workers at handshake)."""
    split_threshold: int | None = None
    """``None`` = the sweep default; an int forces that threshold."""
    backend: str = "bitset"
    quick: bool = False
    """Part of the ``--quick`` matrix (the CI smoke subset)?"""

    @property
    def cell_id(self) -> str:
        split = "default" if self.split_threshold is None else str(
            self.split_threshold
        )
        return (
            f"{self.executor}:w{self.workers}:{self.seeding}"
            f":split={split}:{self.backend}"
        )

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "workers": self.workers,
            "seeding": self.seeding,
            "split_threshold": self.split_threshold,
            "backend": self.backend,
        }


@dataclass
class CellRun:
    """An executable cell: the timed body plus its isolation hooks.

    ``prepare``/``cleanup`` run once around the whole cell (enter/exit
    store configuration, spawn/reap helpers); ``setup`` runs before every
    repeat, outside the timed window (reset caches, respawn workers).
    """

    cell: Cell
    fn: Callable[[], object]
    setup: Callable[[], None] | None = None
    prepare: Callable[[], None] | None = None
    cleanup: Callable[[], None] | None = None


@dataclass(frozen=True)
class Scenario:
    """A named workload with its declared matrix and cell builder."""

    name: str
    description: str
    cells: tuple[Cell, ...]
    builder: Callable[[Cell], CellRun] = field(repr=False)

    def matrix(self, quick: bool = False) -> tuple[Cell, ...]:
        if quick:
            return tuple(c for c in self.cells if c.quick)
        return self.cells

    def build(self, cell: Cell) -> CellRun:
        return self.builder(cell)

    def to_dict(self, quick: bool = False) -> dict:
        return {
            "scenario": self.name,
            "description": self.description,
            "cells": [
                {"id": c.cell_id, "quick": c.quick, **c.to_dict()}
                for c in self.matrix(quick)
            ],
        }


# ----------------------------------------------------------------------
# Shared workload ingredients
# ----------------------------------------------------------------------

_SRC = str(Path(__file__).resolve().parents[2])


@lru_cache(maxsize=None)
def _representatives(n: int) -> tuple:
    from ..graphs.generators import iter_all_digraphs
    from ..graphs.symmetry import iter_isomorphism_classes

    return tuple(
        sorted(
            iter_isomorphism_classes(iter_all_digraphs(n)),
            key=lambda g: (-g.proper_edge_count, g.out_rows),
        )
    )


@lru_cache(maxsize=None)
def _heaviest_n3_model() -> tuple:
    """All 64 graphs: the full model of the sparsest n=3 class."""
    from ..models.closed_above import symmetric_closed_above

    model = symmetric_closed_above([_representatives(3)[-1]])
    return tuple(sorted(model.iter_graphs(max_graphs=1 << 12)))


@lru_cache(maxsize=None)
def _n4_tail_sample() -> tuple:
    """First 256 graphs of the sparsest enumerable 2-edge n=4 class."""
    from ..errors import GraphError
    from ..models.closed_above import symmetric_closed_above

    for g in reversed(_representatives(4)):
        try:
            model = symmetric_closed_above([g])
            full = sorted(model.iter_graphs(max_graphs=1 << 10))
        except GraphError:
            continue  # up-set exceeds the budget; densify
        return tuple(full[:256])
    raise RuntimeError("no enumerable n=4 tail class")


def _clear_kernel_cache() -> None:
    from ..engine import KERNEL_CACHE

    KERNEL_CACHE.clear()


def _executor_for(cell: Cell):
    """A fresh executor for one repeat of ``cell`` (in-process workers)."""
    from ..dist import DistExecutor, PoolExecutor, SerialExecutor
    from ..dist.worker import run_worker

    if cell.executor == "serial":
        return SerialExecutor()
    if cell.executor == "pool":
        return PoolExecutor(cell.workers)

    def launch(address):
        for _ in range(cell.workers):
            threading.Thread(
                target=run_worker, args=address, daemon=True
            ).start()

    return DistExecutor(":0", on_bound=launch)


def _rows_fingerprint(rows) -> list:
    """The sweep table as JSON-able strings (the ``sweep --json`` shape)."""
    return [[repr(value) for value in row] for row in rows]


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _worker_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC + (os.pathsep + existing if existing else "")
    env["REPRO_STORE"] = "off"
    return env


def _spawn_workers(address: tuple[str, int], count: int) -> list:
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{address[0]}:{address[1]}",
                "--retry", "60",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Scenario: the E10 n=3 frontier, cold, across executors
# ----------------------------------------------------------------------

def _build_e10_sweep(cell: Cell) -> CellRun:
    import repro.store as store_pkg

    from ..analysis.sweeps import DEFAULT_SPLIT_THRESHOLD, solvability_sweep

    stack = contextlib.ExitStack()
    threshold = (
        DEFAULT_SPLIT_THRESHOLD
        if cell.split_threshold is None
        else cell.split_threshold
    )

    def prepare() -> None:
        stack.enter_context(store_pkg.RESULT_STORE.disabled())
        _clear_kernel_cache()

    def fn() -> object:
        report = solvability_sweep(
            3,
            executor=_executor_for(cell),
            split_threshold=threshold,
            backend=cell.backend,
        )
        return {
            "classes": len(report.rows),
            "within": sum(1 for row in report.rows if row[3]),
            "splits": report.splits,
            "rows": _rows_fingerprint(report.rows),
        }

    def cleanup() -> None:
        stack.close()
        _clear_kernel_cache()

    return CellRun(
        cell=cell,
        fn=fn,
        setup=_clear_kernel_cache,
        prepare=prepare,
        cleanup=cleanup,
    )


# ----------------------------------------------------------------------
# Scenario: raw backend searches (no caching tiers at all)
# ----------------------------------------------------------------------

def _build_backend_search(pool_builder, ks) -> Callable[[Cell], CellRun]:
    def build(cell: Cell) -> CellRun:
        import repro.store as store_pkg

        from ..verification import decide_one_round_solvability

        stack = contextlib.ExitStack()
        pool = list(pool_builder())

        def prepare() -> None:
            stack.enter_context(store_pkg.RESULT_STORE.disabled())
            _clear_kernel_cache()

        def fn() -> object:
            results = [
                decide_one_round_solvability(pool, k, backend=cell.backend)
                for k in ks
            ]
            return [
                [r.solvable, r.view_count, r.execution_count]
                for r in results
            ]

        def cleanup() -> None:
            stack.close()
            _clear_kernel_cache()

        return CellRun(
            cell=cell,
            fn=fn,
            setup=_clear_kernel_cache,
            prepare=prepare,
            cleanup=cleanup,
        )

    return build


# ----------------------------------------------------------------------
# Scenario: store cold vs warm (the persistence tiers themselves)
# ----------------------------------------------------------------------

def _build_store_sweep(cell: Cell) -> CellRun:
    import repro.store as store_pkg

    from ..analysis.sweeps import solvability_sweep

    state: dict = {"tmp": None, "repeat": 0}

    def prepare() -> None:
        state["tmp"] = tempfile.TemporaryDirectory(prefix="repro-bench-")
        _clear_kernel_cache()
        if cell.seeding == "warm":
            store = store_pkg.configure(
                path=os.path.join(state["tmp"].name, "warm.sqlite"),
                mode="rw",
            )
            solvability_sweep(3, backend=cell.backend)
            store.flush()

    def setup() -> None:
        _clear_kernel_cache()
        if cell.seeding == "cold":
            # A brand-new store file per repeat: every repeat pays the
            # full compute + write cost, none reads its predecessor's.
            state["repeat"] += 1
            store_pkg.configure(
                path=os.path.join(
                    state["tmp"].name, f"cold-{state['repeat']}.sqlite"
                ),
                mode="rw",
            )

    def fn() -> object:
        report = solvability_sweep(3, backend=cell.backend)
        return {
            "classes": len(report.rows),
            "resumed": report.resumed,
            "within": sum(1 for row in report.rows if row[3]),
        }

    def cleanup() -> None:
        store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
        if state["tmp"] is not None:
            state["tmp"].cleanup()
        _clear_kernel_cache()

    return CellRun(
        cell=cell, fn=fn, setup=setup, prepare=prepare, cleanup=cleanup
    )


# ----------------------------------------------------------------------
# Scenario: seeded distributed run (subprocess workers, warm coordinator)
# ----------------------------------------------------------------------

def _build_dist_seeded(cell: Cell) -> CellRun:
    import repro.store as store_pkg

    from ..analysis.sweeps import solvability_sweep
    from ..dist import DistExecutor

    state: dict = {"tmp": None, "port": None, "workers": []}

    def _reap() -> None:
        for worker in state["workers"]:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
        state["workers"] = []

    def prepare() -> None:
        state["tmp"] = tempfile.TemporaryDirectory(prefix="repro-bench-")
        _clear_kernel_cache()
        store = store_pkg.configure(
            path=os.path.join(state["tmp"].name, "seed.sqlite"), mode="rw"
        )
        solvability_sweep(3, backend=cell.backend)
        store.flush()

    def setup() -> None:
        # Fresh store-less worker subprocesses each repeat, with a head
        # start for interpreter boot + imports — the timed window then
        # measures handshake seeding, queue service, and assembly only.
        _reap()
        _clear_kernel_cache()
        port = _free_port()
        state["port"] = port
        state["workers"] = _spawn_workers(("127.0.0.1", port), cell.workers)
        time.sleep(2.0)

    def fn() -> object:
        report = solvability_sweep(
            3,
            executor=DistExecutor(f"127.0.0.1:{state['port']}"),
            backend=cell.backend,
        )
        return {
            "classes": len(report.rows),
            "resumed": report.resumed,
            "within": sum(1 for row in report.rows if row[3]),
        }

    def cleanup() -> None:
        _reap()
        store_pkg.configure(path=store_pkg.DEFAULT_PATH, mode="off")
        if state["tmp"] is not None:
            state["tmp"].cleanup()
        _clear_kernel_cache()

    return CellRun(
        cell=cell, fn=fn, setup=setup, prepare=prepare, cleanup=cleanup
    )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="e10_sweep",
        description=(
            "the full n=3 solvability frontier (16 classes), cold caches, "
            "store off — serial / pool / forced-split / dist executors"
        ),
        cells=(
            Cell(executor="serial", workers=1, backend="bitset", quick=True),
            Cell(executor="pool", workers=2, backend="bitset", quick=True),
            Cell(executor="serial", workers=1, backend="reference"),
            Cell(
                executor="serial", workers=1, backend="bitset",
                split_threshold=1,
            ),
            Cell(executor="dist", workers=2, backend="bitset"),
        ),
        builder=_build_e10_sweep,
    ),
    Scenario(
        name="heaviest_n3_class",
        description=(
            "per-k CSP searches (k=1..3) over the heaviest n=3 class's "
            "full 64-graph model, all caching tiers off"
        ),
        cells=(
            Cell(backend="bitset", quick=True),
            Cell(backend="reference"),
        ),
        builder=_build_backend_search(_heaviest_n3_model, (1, 2, 3)),
    ),
    Scenario(
        name="n4_tail_sample",
        description=(
            "per-k CSP searches (k=1..2) over 256 graphs of the sparsest "
            "enumerable n=4 tail class, all caching tiers off"
        ),
        cells=(
            Cell(backend="bitset", quick=True),
            Cell(backend="reference"),
        ),
        builder=_build_backend_search(_n4_tail_sample, (1, 2)),
    ),
    Scenario(
        name="store_warm_cold",
        description=(
            "the n=3 sweep against the persistent store: cold (fresh rw "
            "file per repeat) vs warm (pre-populated, kernel cache cleared)"
        ),
        cells=(
            Cell(seeding="cold", quick=True),
            Cell(seeding="warm", quick=True),
        ),
        builder=_build_store_sweep,
    ),
    Scenario(
        name="dist_seeded",
        description=(
            "the n=3 sweep over store-less worker subprocesses seeded at "
            "handshake from a warm coordinator store"
        ),
        cells=(
            Cell(executor="dist", workers=2, seeding="seeded"),
        ),
        builder=_build_dist_seeded,
    ),
)

_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def select_scenarios(names=None) -> tuple[Scenario, ...]:
    """Resolve scenario names (``None`` = all), rejecting unknowns."""
    if not names:
        return SCENARIOS
    unknown = [name for name in names if name not in _BY_NAME]
    if unknown:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(
            f"unknown scenario(s) {', '.join(sorted(unknown))}; "
            f"known: {known}"
        )
    return tuple(_BY_NAME[name] for name in names)
