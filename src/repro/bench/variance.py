"""Variance-aware repeated measurement: the harness's timing engine.

Single-shot timings (the ``min of 2 cold runs`` idiom the earlier
``benchmarks/bench_*.py`` scripts used) conflate a workload's cost with
whatever else the machine was doing during those two runs.  This module
measures the way a perf trajectory needs: ``warmup`` untimed runs first
(JIT-free Python still warms allocators, page caches, and import state),
then timed repeats until the **coefficient of variation** (sample
standard deviation over mean) drops below a threshold or a repeat cap is
hit — so quiet machines stop early and noisy ones keep sampling, and
every recorded cell carries its own noise estimate alongside the value.

Everything is injectable for determinism: ``clock`` replaces
``time.perf_counter`` (the tests drive a fake clock through exact CV
trajectories) and ``setup`` runs before *every* run, outside the timed
window — the hook cell builders use to reset the kernel cache or point
the store at a fresh file, so repeats are independent cold runs instead
of accidentally-warm reruns.
"""

from __future__ import annotations

import math
import statistics
import time
from collections.abc import Callable
from dataclasses import dataclass

__all__ = [
    "DEFAULT_CONFIG",
    "QUICK_CONFIG",
    "Measurement",
    "VarianceConfig",
    "measure",
    "quantile",
]


@dataclass(frozen=True)
class VarianceConfig:
    """Knobs of one adaptive measurement.

    ``warmup`` untimed runs, then at least ``min_repeats`` timed ones;
    sampling continues until the CV is at most ``cv_threshold`` or
    ``max_repeats`` samples exist.  ``min_repeats >= 2`` keeps the CV
    meaningful (a single sample has no spread to judge); a zero
    ``cv_threshold`` with ``min_repeats == max_repeats`` expresses a
    fixed repeat count (the old ``min of N`` idiom, adaptivity off).
    """

    warmup: int = 1
    min_repeats: int = 3
    max_repeats: int = 10
    cv_threshold: float = 0.10

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.min_repeats < 1:
            raise ValueError(
                f"min_repeats must be >= 1, got {self.min_repeats}"
            )
        if self.max_repeats < self.min_repeats:
            raise ValueError(
                f"max_repeats ({self.max_repeats}) must be >= min_repeats "
                f"({self.min_repeats})"
            )
        if self.cv_threshold < 0:
            raise ValueError(
                f"cv_threshold must be >= 0, got {self.cv_threshold}"
            )

    def to_dict(self) -> dict:
        return {
            "warmup": self.warmup,
            "min_repeats": self.min_repeats,
            "max_repeats": self.max_repeats,
            "cv_threshold": self.cv_threshold,
        }


#: The full-run defaults: enough repeats to quote a stable median.
DEFAULT_CONFIG = VarianceConfig()

#: ``bench run --quick``: two repeats, no convergence loop to speak of —
#: the CI smoke profile, where schema validity matters more than noise.
QUICK_CONFIG = VarianceConfig(
    warmup=1, min_repeats=2, max_repeats=3, cv_threshold=0.25
)


def quantile(samples, q: float) -> float:
    """Linear-interpolated quantile of ``samples`` (numpy's default).

    ``q`` in ``[0, 1]``; a single sample is every quantile of itself.
    """
    xs = sorted(samples)
    if not xs:
        raise ValueError("quantile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if len(xs) == 1:
        return float(xs[0])
    position = q * (len(xs) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    fraction = position - lower
    return float(xs[lower] * (1.0 - fraction) + xs[upper] * fraction)


@dataclass(frozen=True)
class Measurement:
    """One cell's timing record: the raw samples plus derived statistics.

    ``value`` is whatever the measured callable returned on its *last*
    timed run — the workload's result, which the harness embeds so a
    trajectory point can detect result drift, not just slowdowns.
    """

    samples: tuple[float, ...]
    warmups: tuple[float, ...] = ()
    converged: bool = False
    value: object = None

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a Measurement needs at least one sample")

    @property
    def repeats(self) -> int:
        return len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return float(statistics.median(self.samples))

    @property
    def iqr(self) -> float:
        """Interquartile range — the robust spread the median pairs with."""
        return quantile(self.samples, 0.75) - quantile(self.samples, 0.25)

    @property
    def cv(self) -> float:
        """Coefficient of variation: sample stdev over mean (0 if single)."""
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        if mean <= 0.0:
            return 0.0
        return statistics.stdev(self.samples) / mean

    def seconds_dict(self) -> dict:
        """The JSON shape one bench cell records under ``seconds``."""
        return {
            "min": self.min,
            "median": self.median,
            "mean": self.mean,
            "iqr": self.iqr,
            "cv": self.cv,
            "samples": list(self.samples),
        }


def measure(
    fn: Callable[[], object],
    *,
    config: VarianceConfig | None = None,
    clock: Callable[[], float] = time.perf_counter,
    setup: Callable[[], None] | None = None,
) -> Measurement:
    """Measure ``fn``'s wall-clock with warmups then adaptive repeats.

    ``setup`` runs before every run — warmup or timed — outside the
    timed window; ``clock`` is sampled immediately around each ``fn()``
    call.  Convergence is checked once ``min_repeats`` samples exist:
    the loop stops early when the running CV is within
    ``config.cv_threshold``, else continues to ``max_repeats``.
    """
    config = config or DEFAULT_CONFIG
    warmups: list[float] = []
    for _ in range(config.warmup):
        if setup is not None:
            setup()
        started = clock()
        fn()
        warmups.append(clock() - started)
    samples: list[float] = []
    value: object = None
    converged = False
    while len(samples) < config.max_repeats:
        if setup is not None:
            setup()
        started = clock()
        value = fn()
        samples.append(clock() - started)
        if len(samples) >= config.min_repeats:
            current = Measurement(tuple(samples))
            if current.cv <= config.cv_threshold:
                converged = True
                break
    return Measurement(
        samples=tuple(samples),
        warmups=tuple(warmups),
        converged=converged,
        value=value,
    )
