"""repro.bench — the variance-aware benchmark harness and perf trajectory.

The committed perf record of this repo is a sequence of schema-versioned
JSON *trajectory points* (``benchmarks/BENCH_<rev>.json``), each one
produced by ``python -m repro bench run``: named scenarios
(:data:`~repro.bench.scenarios.SCENARIOS`) executed over a declared
``{executor, workers, seeding, split-threshold, backend}`` matrix, timed
by the adaptive variance engine (:func:`~repro.bench.variance.measure`:
warmups, then repeat until the CV settles), and attributed by an
embedded :mod:`repro.obs` trace digest per cell.

``python -m repro bench compare OLD NEW`` diffs two points and exits
nonzero on a median regression or result drift — the gate CI's
``bench-smoke`` job runs against the last landed point instead of
scattered static ``>= Nx`` constants.
"""

from __future__ import annotations

from .compare import (
    DEFAULT_TOLERANCE,
    BenchFormatError,
    compare_snapshots,
    describe_comparison,
    load_snapshot,
)
from .harness import (
    SCHEMA,
    list_scenarios,
    run_bench,
    validate_snapshot,
    write_snapshot,
)
from .scenarios import SCENARIOS, Cell, CellRun, Scenario, select_scenarios
from .variance import (
    DEFAULT_CONFIG,
    QUICK_CONFIG,
    Measurement,
    VarianceConfig,
    measure,
    quantile,
)

__all__ = [
    "BenchFormatError",
    "Cell",
    "CellRun",
    "DEFAULT_CONFIG",
    "DEFAULT_TOLERANCE",
    "Measurement",
    "QUICK_CONFIG",
    "SCENARIOS",
    "SCHEMA",
    "Scenario",
    "VarianceConfig",
    "compare_snapshots",
    "describe_comparison",
    "list_scenarios",
    "load_snapshot",
    "measure",
    "quantile",
    "run_bench",
    "select_scenarios",
    "validate_snapshot",
    "write_snapshot",
]
