"""Diff two trajectory points; the regression gate behind ``bench compare``.

Cells are matched by ``(scenario, cell id)`` — the matrix coordinates —
and judged on their **median** seconds: the median is what the variance
engine stabilised, so it is the only statistic fair to gate on (min
rewards lucky runs, mean punishes one outlier).  A cell whose new median
exceeds the old by more than ``tolerance`` is a *regression*; a cell
whose embedded workload ``result`` changed at all is *drift* — a
correctness failure dressed as a benchmark, reported separately and
fatally.  Cells present on only one side are listed but never fail the
gate: the matrix is allowed to grow.

Schema discipline: :func:`load_snapshot` refuses files that fail
:func:`~repro.bench.harness.validate_snapshot`, and comparing across
schema versions raises :class:`BenchFormatError` — CI exit code 2,
distinct from a genuine regression's exit code 1.
"""

from __future__ import annotations

import json

from .harness import SCHEMA, validate_snapshot

__all__ = [
    "BenchFormatError",
    "compare_snapshots",
    "describe_comparison",
    "load_snapshot",
]

#: Default headroom before a slower median counts as a regression: wide
#: enough for shared CI runners, tight enough to catch a real 2x cliff.
DEFAULT_TOLERANCE = 0.25


class BenchFormatError(Exception):
    """A snapshot failed validation or the schema versions mismatch."""


def load_snapshot(path: str) -> dict:
    """Read and validate one trajectory point; raise on anything invalid."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BenchFormatError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not JSON ({exc})") from exc
    problems = validate_snapshot(payload)
    if problems:
        raise BenchFormatError(
            f"{path}: not a valid {SCHEMA} snapshot: " + "; ".join(problems)
        )
    return payload


def _cells_by_key(payload: dict) -> dict:
    return {
        (cell["scenario"], cell["id"]): cell for cell in payload["cells"]
    }


def compare_snapshots(
    old: dict, new: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """Compare two validated snapshots; returns the full comparison report.

    ``tolerance`` is a fraction (0.25 = 25% headroom).  The report's
    ``ok`` is False exactly when a common cell regressed or drifted.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old_schema = old.get("schema")
    new_schema = new.get("schema")
    if old_schema != new_schema:
        raise BenchFormatError(
            f"schema mismatch: old snapshot is {old_schema!r}, new is "
            f"{new_schema!r} — regenerate the older point before comparing"
        )
    old_cells = _cells_by_key(old)
    new_cells = _cells_by_key(new)
    compared: list[dict] = []
    regressions: list[dict] = []
    drift: list[dict] = []
    for key in sorted(old_cells.keys() & new_cells.keys()):
        scenario, cell_id = key
        before = old_cells[key]
        after = new_cells[key]
        old_median = float(before["seconds"]["median"])
        new_median = float(after["seconds"]["median"])
        ratio = (new_median / old_median) if old_median > 0 else None
        regressed = (
            old_median > 0 and new_median > old_median * (1.0 + tolerance)
        )
        row = {
            "scenario": scenario,
            "id": cell_id,
            "old_median": old_median,
            "new_median": new_median,
            "ratio": ratio,
            "regressed": regressed,
        }
        compared.append(row)
        if regressed:
            regressions.append(row)
        if (
            before.get("result") is not None
            and after.get("result") is not None
            and before["result"] != after["result"]
        ):
            drift.append(
                {
                    "scenario": scenario,
                    "id": cell_id,
                    "old_result": before["result"],
                    "new_result": after["result"],
                }
            )
    return {
        "old_revision": old.get("revision"),
        "new_revision": new.get("revision"),
        "tolerance": tolerance,
        "compared": compared,
        "regressions": regressions,
        "drift": drift,
        "only_old": [
            {"scenario": s, "id": i}
            for s, i in sorted(old_cells.keys() - new_cells.keys())
        ],
        "only_new": [
            {"scenario": s, "id": i}
            for s, i in sorted(new_cells.keys() - old_cells.keys())
        ],
        "ok": not regressions and not drift,
    }


def describe_comparison(report: dict) -> str:
    """Human-readable rendering of :func:`compare_snapshots` output."""
    lines = [
        f"bench compare: {report['old_revision']} -> "
        f"{report['new_revision']} "
        f"({len(report['compared'])} common cell(s), tolerance "
        f"{report['tolerance'] * 100:.0f}%)"
    ]
    for row in report["compared"]:
        ratio = (
            f"{row['ratio']:.2f}x" if row["ratio"] is not None else "n/a"
        )
        marker = "  REGRESSION" if row["regressed"] else ""
        lines.append(
            f"  {row['scenario']} [{row['id']}]: "
            f"{row['old_median']:.3f}s -> {row['new_median']:.3f}s "
            f"({ratio}){marker}"
        )
    for entry in report["drift"]:
        lines.append(
            f"  {entry['scenario']} [{entry['id']}]: RESULT DRIFT — "
            f"the workload's answer changed between revisions"
        )
    if report["only_old"]:
        dropped = ", ".join(
            f"{e['scenario']}[{e['id']}]" for e in report["only_old"]
        )
        lines.append(f"  cells only in the old point: {dropped}")
    if report["only_new"]:
        added = ", ".join(
            f"{e['scenario']}[{e['id']}]" for e in report["only_new"]
        )
        lines.append(f"  cells only in the new point: {added}")
    lines.append(
        "PASS: no regressions"
        if report["ok"]
        else (
            f"FAIL: {len(report['regressions'])} regression(s), "
            f"{len(report['drift'])} drifted result(s)"
        )
    )
    return "\n".join(lines)
