"""Layered, frozen run-configuration objects — one knob surface, composed.

Every run in this repo is shaped by the same handful of knobs — executor
(serial / pool / distributed), store mode, seeding, sweep granularity,
backend — but until now they travelled as an ever-growing keyword list
(``make_executor(jobs, distributed, seed_store, ...)``) plus environment
variables read at scattered call sites.  This module gives each layer one
frozen dataclass:

* :class:`ExecutorConfig` — how jobs run (jobs / distributed address /
  seeding / lease timeout);
* :class:`StoreConfig` — where results persist (mode / path / batching);
* :class:`SweepConfig` — what a solvability sweep computes, embedding an
  :class:`ExecutorConfig`;
* :class:`ServeConfig` — the long-lived query service
  (:mod:`repro.serve`), embedding both.

Configs compose instead of multiplying flags: a ``ServeConfig`` *contains*
a ``StoreConfig`` and the executor knobs it needs, the way mpc4j's
protocol configs stack sub-protocol configs.  Each class offers four ways
in, all producing the same frozen value:

* the plain constructor (keyword arguments, validated);
* a fluent builder — ``ExecutorConfig.builder().jobs(8).build()``;
* ``from_env()`` — the documented ``REPRO_*`` environment variables;
* ``from_args()`` — an ``argparse`` namespace from the CLI surface.

Because configs are frozen and built from primitives, every config has a
stable :meth:`~_Config.fingerprint` (12 hex chars over the canonical
key encoding of its fields).  The fingerprint is the run's identity card:
``solvability_sweep`` stamps it into trace attributes and its JSON
report, and ``bench`` records it per cell — so two result sets are
comparable exactly when their fingerprints match.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from collections.abc import Mapping
from dataclasses import dataclass, field, fields

from .errors import ConfigError

__all__ = [
    "ExecutorConfig",
    "StoreConfig",
    "SweepConfig",
    "ServeConfig",
    "config_fingerprint",
]

#: Store modes, mirrored from :mod:`repro.store` (not imported at module
#: scope: config must stay importable before any heavy layer).
_STORE_MODES = ("off", "ro", "rw")

#: Default sweep knobs, mirrored from :mod:`repro.analysis.sweeps` (which
#: asserts the mirror in its own test so the two cannot drift silently).
DEFAULT_BUDGET = 1 << 12
DEFAULT_SPLIT_THRESHOLD = 1 << 11


def config_fingerprint(value) -> str:
    """12-hex-char stable digest of a config object or plain mapping.

    The one fingerprint function every surface shares: config objects,
    bench cells (as mappings), anything built from the canonical key
    primitives (str/int/float/bool/None, nested tuples/lists/dicts).
    Deterministic across processes — it reuses the store's canonical key
    encoding, the same machinery that content-addresses kernel results.
    """
    from .store.keys import Unfingerprintable, encode_key

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        label = type(value).__name__
        data = dataclasses.asdict(value)
    elif isinstance(value, Mapping):
        label = "mapping"
        data = dict(value)
    else:
        raise ConfigError(
            f"cannot fingerprint {type(value).__name__}: expected a config "
            "dataclass or a mapping"
        )
    try:
        blob = label.encode("utf-8") + b"|" + encode_key(data)
    except Unfingerprintable as exc:
        raise ConfigError(f"config contains unfingerprintable value: {exc}") from exc
    return hashlib.sha256(blob).hexdigest()[:12]


class _Builder:
    """Fluent setter-per-field builder for one config class.

    ``ExecutorConfig.builder().jobs(8).seed_store(False).build()`` — each
    dataclass field name is a setter returning the builder; unknown names
    fail fast with the valid field list, so typos cannot silently build a
    default config.
    """

    def __init__(self, config_cls, **initial):
        object.__setattr__(self, "_cls", config_cls)
        object.__setattr__(
            self, "_names", tuple(f.name for f in fields(config_cls))
        )
        object.__setattr__(self, "_values", dict(initial))

    def __getattr__(self, name):
        if name.startswith("_") or name not in self._names:
            raise AttributeError(
                f"{self._cls.__name__} has no field {name!r}; "
                f"fields: {', '.join(self._names)}"
            )

        def setter(value):
            self._values[name] = value
            return self

        return setter

    def build(self):
        """Construct (and validate) the frozen config."""
        return self._cls(**self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self._cls.__name__}.builder({self._values})"


class _Config:
    """Shared behaviour of every config dataclass."""

    @classmethod
    def builder(cls, **initial) -> _Builder:
        """A fluent builder pre-loaded with ``initial`` field values."""
        return _Builder(cls, **initial)

    def replace(self, **changes):
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """Nested plain-dict view (JSON-ready)."""
        return dataclasses.asdict(self)

    def fingerprint(self) -> str:
        """The run-identity digest; see :func:`config_fingerprint`."""
        return config_fingerprint(self)


def _env_bool(env: Mapping[str, str], name: str, default: bool) -> bool:
    raw = env.get(name)
    if raw is None:
        return default
    text = raw.strip().lower()
    if text in ("1", "true", "on", "yes"):
        return True
    if text in ("0", "false", "off", "no"):
        return False
    raise ConfigError(f"{name}={raw!r} is not a boolean (on/off)")


def _env_int(env: Mapping[str, str], name: str, default: int) -> int:
    raw = env.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not an integer") from None


def _env_float(env: Mapping[str, str], name: str, default: float) -> float:
    raw = env.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not a number") from None


def _tristate(value, default: bool) -> bool:
    """Map CLI on/off strings (or booleans, or None) onto a bool."""
    if value is None:
        return default
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("on", "true", "1", "yes"):
        return True
    if text in ("off", "false", "0", "no"):
        return False
    raise ConfigError(f"expected on/off, got {value!r}")


@dataclass(frozen=True)
class ExecutorConfig(_Config):
    """How a batch executes: the ``make_executor`` surface as a value.

    ``distributed`` (a ``HOST:PORT`` / ``:PORT`` spec) wins over ``jobs``,
    exactly as on the CLI; ``seed_store`` and ``lease_timeout`` only bind
    for the distributed executor.
    """

    jobs: int = 1
    distributed: str | None = None
    seed_store: bool = True
    lease_timeout: float = 60.0

    def __post_init__(self):
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ConfigError(f"jobs must be a positive int, got {self.jobs!r}")
        if self.lease_timeout <= 0:
            raise ConfigError(
                f"lease_timeout must be positive, got {self.lease_timeout!r}"
            )

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ExecutorConfig":
        env = os.environ if env is None else env
        return cls(
            jobs=_env_int(env, "REPRO_JOBS", 1),
            distributed=env.get("REPRO_DISTRIBUTED") or None,
            seed_store=_env_bool(env, "REPRO_SEED_STORE", True),
            lease_timeout=_env_float(env, "REPRO_LEASE_TIMEOUT", 60.0),
        )

    @classmethod
    def from_args(cls, args) -> "ExecutorConfig":
        """Lift the CLI's ``--jobs/--distributed/--seed-store`` flags."""
        return cls(
            jobs=getattr(args, "jobs", 1) or 1,
            distributed=getattr(args, "distributed", None),
            seed_store=_tristate(getattr(args, "seed_store", None), True),
            lease_timeout=getattr(args, "lease_timeout", None) or 60.0,
        )

    def make(self, *, log=None, on_bound=None):
        """Build the executor this config describes.

        The config-native core of
        :func:`repro.dist.executor.make_executor`; the old keyword
        signature delegates here.
        """
        from .dist.executor import DistExecutor, PoolExecutor, SerialExecutor

        if self.distributed is not None:
            return DistExecutor(
                self.distributed,
                lease_timeout=self.lease_timeout,
                seed_store=self.seed_store,
                log=log,
                on_bound=on_bound,
            )
        if self.jobs > 1:
            return PoolExecutor(self.jobs)
        return SerialExecutor()


@dataclass(frozen=True)
class StoreConfig(_Config):
    """Where kernel results persist: the ``REPRO_STORE*`` surface."""

    mode: str = "off"
    path: str | None = None
    batch_size: int | None = None

    def __post_init__(self):
        if self.mode not in _STORE_MODES:
            raise ConfigError(
                f"store mode must be one of {_STORE_MODES}, got {self.mode!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be positive, got {self.batch_size!r}"
            )

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "StoreConfig":
        env = os.environ if env is None else env
        mode = (env.get("REPRO_STORE") or "off").strip().lower()
        if mode not in _STORE_MODES:
            mode = "off"  # mirror repro.store's forgiving env parse
        return cls(mode=mode, path=env.get("REPRO_STORE_PATH") or None)

    @classmethod
    def from_args(cls, args) -> "StoreConfig":
        return cls(
            mode=getattr(args, "store", None) or "off",
            path=getattr(args, "store_path", None),
        )

    def apply(self):
        """Install this config as the process-global store; returns it.

        A no-op shape change only: delegates to
        :func:`repro.store.configure`, keeping unspecified fields at the
        current store's values.
        """
        from . import store as store_pkg

        return store_pkg.configure(
            path=self.path, mode=self.mode, batch_size=self.batch_size
        )


@dataclass(frozen=True)
class SweepConfig(_Config):
    """One solvability sweep, fully specified (embeds the executor)."""

    n: int = 4
    limit: int | None = None
    budget: int = DEFAULT_BUDGET
    split_threshold: int = DEFAULT_SPLIT_THRESHOLD
    subshard: bool = True
    backend: str | None = None
    cost_model: str = "static"
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)

    def __post_init__(self):
        if self.n < 1:
            raise ConfigError(f"n must be positive, got {self.n!r}")
        if self.budget < 1:
            raise ConfigError(f"budget must be positive, got {self.budget!r}")
        if self.limit is not None and self.limit < 1:
            raise ConfigError(f"limit must be positive, got {self.limit!r}")
        if self.cost_model not in ("static", "observed"):
            raise ConfigError(
                f"cost_model must be static|observed, got {self.cost_model!r}"
            )
        if isinstance(self.executor, dict):  # tolerate asdict round trips
            object.__setattr__(self, "executor", ExecutorConfig(**self.executor))

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "SweepConfig":
        env = os.environ if env is None else env
        return cls(
            n=_env_int(env, "REPRO_SWEEP_N", 4),
            budget=_env_int(env, "REPRO_SWEEP_BUDGET", DEFAULT_BUDGET),
            backend=env.get("REPRO_CSP_BACKEND") or None,
            executor=ExecutorConfig.from_env(env),
        )

    @classmethod
    def from_args(cls, args) -> "SweepConfig":
        """Lift the ``sweep`` CLI namespace onto one config value."""
        return cls(
            n=getattr(args, "n", 4),
            limit=getattr(args, "limit", None),
            budget=getattr(args, "budget", None) or DEFAULT_BUDGET,
            split_threshold=(
                getattr(args, "split_threshold", None) or DEFAULT_SPLIT_THRESHOLD
            ),
            subshard=_tristate(getattr(args, "subshard", None), True),
            backend=getattr(args, "backend", None),
            cost_model=getattr(args, "cost_model", None) or "static",
            executor=ExecutorConfig.from_args(args),
        )


@dataclass(frozen=True)
class ServeConfig(_Config):
    """The long-lived query service (:mod:`repro.serve`).

    ``http`` is where queries land; ``distributed`` is the coordinator's
    worker-facing address (``None`` binds an ephemeral localhost port).
    ``workers`` in-process worker threads are started so cold queries
    complete without external ``python -m repro worker`` processes —
    point real workers at the distributed address to scale out.
    """

    http: str = "127.0.0.1:8080"
    distributed: str | None = None
    workers: int = 1
    budget: int = DEFAULT_BUDGET
    backend: str | None = None
    wait_delay: float = 0.05
    lease_timeout: float = 60.0
    store: StoreConfig = field(default_factory=StoreConfig)

    def __post_init__(self):
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers!r}")
        if self.budget < 1:
            raise ConfigError(f"budget must be positive, got {self.budget!r}")
        if self.wait_delay <= 0:
            raise ConfigError(
                f"wait_delay must be positive, got {self.wait_delay!r}"
            )
        if self.lease_timeout <= 0:
            raise ConfigError(
                f"lease_timeout must be positive, got {self.lease_timeout!r}"
            )
        if isinstance(self.store, dict):  # tolerate asdict round trips
            object.__setattr__(self, "store", StoreConfig(**self.store))

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ServeConfig":
        env = os.environ if env is None else env
        return cls(
            http=env.get("REPRO_SERVE_HTTP") or "127.0.0.1:8080",
            distributed=env.get("REPRO_SERVE_DIST") or None,
            workers=_env_int(env, "REPRO_SERVE_WORKERS", 1),
            budget=_env_int(env, "REPRO_SWEEP_BUDGET", DEFAULT_BUDGET),
            backend=env.get("REPRO_CSP_BACKEND") or None,
            store=StoreConfig.from_env(env),
        )

    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Lift the ``serve`` CLI namespace onto one config value."""
        return cls(
            http=getattr(args, "http", None) or "127.0.0.1:8080",
            distributed=getattr(args, "distributed", None),
            workers=(
                 getattr(args, "workers", None)
                 if getattr(args, "workers", None) is not None
                 else 1
            ),
            budget=getattr(args, "budget", None) or DEFAULT_BUDGET,
            backend=getattr(args, "backend", None),
            wait_delay=getattr(args, "wait_delay", None) or 0.05,
            lease_timeout=getattr(args, "lease_timeout", None) or 60.0,
            store=StoreConfig.from_args(args),
        )
