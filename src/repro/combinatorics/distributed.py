"""Distributed domination and max-covering numbers (Defs 5.2 and 5.3).

These two quantities drive the paper's one-round lower bound (Thm 5.4):

* ``γ_dist(S)`` — the least ``i`` such that every ``i``-set of processes
  jointly dominates every admissible choice of graphs from ``S``.
* ``max-cov_i(S)`` — for ``i < γ_dist(S)``: the *best-case* spread of an
  ``i``-set across an admissible choice of graphs, among non-dominating
  choices.  It measures how far values can travel while leaving somebody
  ignorant — exactly what indistinguishability arguments need.
* ``M_i(S)`` — the coefficient ``⌊(n-i-1) / (max-cov_i(S) - i)⌋``, or
  ``n - i`` when ``max-cov_i(S) = i`` (Def 5.3).

Two semantics for "admissible choice of graphs"
-----------------------------------------------
The arXiv text of Def 5.2 quantifies over *subsets* ``S_i ⊆ S`` with
``|S_i| = min(i, |S|)`` exactly.  However, the proof of Thm 5.4 (Appendix B)
chooses graphs ``G_0, ..., G_t ∈ S`` **independently, with repetition**, and
the paper's own worked computation for unions of ``s`` stars (Sec 5 and
Appendix G: ``γ_dist = n - s + 1`` via "the graph where the s centres lie in
``Π \\ P``") is only reproduced by the with-repetition reading.  Allowing
repetition makes the binding constraint a single graph, so the predicate
collapses to "every ``i``-set dominates every ``G ∈ S`` individually".

We therefore expose both:

* ``semantics="pointwise"`` (default) — tuples with repetition, the reading
  consistent with the Thm 5.4 proof and the star computations.  Under it
  ``γ_dist(S) = γ_eq(S)`` and non-dominating graph choices are arbitrary
  non-empty subsets of size at most ``min(i, |S|)``.
* ``semantics="subsets"`` — the literal Def 5.2 text: distinct graphs,
  exactly ``min(i, |S|)`` of them.  Gives smaller (weaker for lower bounds)
  values on models like the star unions; kept for fidelity and for the
  E10 tightness experiments.

EXPERIMENTS.md E6/E10 record how the two compare against exhaustive
solvability searches.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

from .._bitops import full_mask, iter_subsets_of_size, popcount
from ..engine.cache import cached_kernel
from ..engine.canonical import graph_set_key
from ..errors import GraphError
from ..graphs.digraph import Digraph

__all__ = [
    "joint_out_of_set",
    "distributed_domination_number",
    "max_covering_number",
    "max_covering_coefficient",
    "max_covering_witness",
    "SEMANTICS",
]

SEMANTICS = ("pointwise", "subsets")


def joint_out_of_set(graphs: Iterable[Digraph], members: int) -> int:
    """``⋃_{G ∈ graphs} Out_G(P)`` as a bitmask."""
    acc = 0
    for g in graphs:
        acc |= g.out_of_set(members)
    return acc


def distributed_domination_number(
    graphs: Iterable[Digraph], semantics: str = "pointwise"
) -> int:
    """``γ_dist(S)`` (Def 5.2) under the chosen semantics.

    The defining predicate is monotone in ``i`` under both semantics (larger
    process sets only enlarge audiences; under "subsets", larger mandatory
    graph subsets enlarge the joint audience too) and holds at ``i = n``
    thanks to self-loops, so a linear scan terminates.
    """
    s = _normalized(graphs)
    _check_semantics(semantics)
    return _distributed_domination_number(s, semantics)


@cached_kernel(
    name="distributed_domination_number",
    key=lambda s, semantics: (graph_set_key(s), semantics),
)
def _distributed_domination_number(s: tuple[Digraph, ...], semantics: str) -> int:
    n = s[0].n
    universe = full_mask(n)
    for i in range(1, n + 1):
        if _dominates_at(s, universe, i, semantics):
            return i
    raise AssertionError("unreachable: Π dominates jointly via self-loops")


def max_covering_number(
    graphs: Iterable[Digraph], i: int, semantics: str = "pointwise"
) -> int:
    """``max-cov_i(S)`` (Def 5.3); requires ``i < γ_dist(S)``.

    Maximum joint audience ``|⋃ Out_G(P)|`` over all ``i``-sets ``P`` and all
    admissible non-dominating graph choices.  Raises :class:`GraphError` when
    every admissible choice dominates (``i ≥ γ_dist(S)``).
    """
    witness = max_covering_witness(graphs, i, semantics)
    if witness is None:
        raise GraphError(
            f"max-cov_{i} undefined: every choice dominates (i >= γ_dist(S))"
        )
    return witness[0]


def max_covering_witness(
    graphs: Iterable[Digraph], i: int, semantics: str = "pointwise"
) -> tuple[int, int, tuple[Digraph, ...]] | None:
    """Realising witness ``(value, members_mask, graph_choice)`` or None.

    The graph choice is returned as the support of the best non-dominating
    selection; None means every admissible choice dominates.
    """
    s = _normalized(graphs)
    _check_semantics(semantics)
    n = s[0].n
    if not 1 <= i <= n:
        raise GraphError(f"index must be in [1, n], got i={i}, n={n}")
    return _max_covering_witness(s, i, semantics)


@cached_kernel(
    name="max_covering_witness",
    key=lambda s, i, semantics: (graph_set_key(s), i, semantics),
)
def _max_covering_witness(
    s: tuple[Digraph, ...], i: int, semantics: str
) -> tuple[int, int, tuple[Digraph, ...]] | None:
    n = s[0].n
    universe = full_mask(n)
    group_size = min(i, len(s))
    if semantics == "subsets":
        sizes: tuple[int, ...] = (group_size,)
    else:
        sizes = tuple(range(1, group_size + 1))
    best: tuple[int, int, tuple[Digraph, ...]] | None = None
    for members in iter_subsets_of_size(universe, i):
        for size in sizes:
            for subset in combinations(s, size):
                audience = joint_out_of_set(subset, members)
                if audience == universe:
                    continue
                value = popcount(audience)
                if best is None or value > best[0]:
                    best = (value, members, subset)
    return best


def max_covering_coefficient(
    graphs: Iterable[Digraph], i: int, semantics: str = "pointwise"
) -> int:
    """``M_i(S)`` (Def 5.3): the lower bound's connectivity budget.

    ``⌊(n - i - 1) / (max-cov_i(S) - i)⌋`` when values can spread beyond
    their holders (``max-cov_i > i``), else ``n - i`` (silent sets).
    """
    s = _as_tuple(graphs)
    n = s[0].n
    max_cov = max_covering_number(s, i, semantics)
    if max_cov > i:
        return (n - i - 1) // (max_cov - i)
    return n - i


def _dominates_at(
    s: tuple[Digraph, ...], universe: int, i: int, semantics: str
) -> bool:
    if semantics == "pointwise":
        # Repetition allowed => the binding constraint is each single graph.
        for members in iter_subsets_of_size(universe, i):
            for g in s:
                if g.out_of_set(members) != universe:
                    return False
        return True
    group_size = min(i, len(s))
    for members in iter_subsets_of_size(universe, i):
        for subset in combinations(s, group_size):
            if joint_out_of_set(subset, members) != universe:
                return False
    return True


def _check_semantics(semantics: str) -> None:
    if semantics not in SEMANTICS:
        raise GraphError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}"
        )


def _as_tuple(graphs: Iterable[Digraph]) -> tuple[Digraph, ...]:
    s = tuple(graphs)
    if not s:
        raise GraphError("graph set must be non-empty")
    n = s[0].n
    if any(g.n != n for g in s):
        raise GraphError("all graphs must share the same process count")
    return s


def _normalized(graphs: Iterable[Digraph]) -> tuple[Digraph, ...]:
    """Validate and normalise a graph *set*: sorted, duplicates removed.

    All Def 5.2/5.3 quantities are functions of the set of graphs, so
    normalising here makes results independent of input ordering and lets
    the kernel cache share one entry per set.
    """
    return tuple(sorted(set(_as_tuple(graphs))))
