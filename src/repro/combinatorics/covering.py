"""Covering numbers of graphs and graph sets (Def 3.6).

``cov_i(G)`` is the worst-case audience of an ``i``-set: the minimum, over all
sets ``P`` of ``i`` processes, of ``|Out_G(P)|``.  For a set of graphs the
paper takes the pessimistic ``cov_i(S) = min_{G∈S} cov_i(G)``.

Because of self-loops ``cov_i ≥ i`` always; the paper uses these numbers for
``i < γ_eq(S)`` (above that every set dominates and the number degenerates to
``n``), but the functions below are total in ``i ∈ [1, n]``.
"""

from __future__ import annotations

from collections.abc import Iterable

from .._bitops import full_mask, iter_subsets_of_size, popcount
from ..engine.cache import cached_kernel
from ..engine.canonical import iso_key
from ..errors import GraphError
from ..graphs.digraph import Digraph

__all__ = [
    "covering_number",
    "covering_number_of_set",
    "covering_numbers",
    "worst_covered_set",
]


def covering_number(g: Digraph, i: int) -> int:
    """``cov_i(G) = min_{|P|=i} |Out_G(P)|`` (Def 3.6)."""
    _check_i(g.n, i)
    return _covering_number(g, i)


@cached_kernel(name="covering_number", key=lambda g, i: (iso_key(g), i))
def _covering_number(g: Digraph, i: int) -> int:
    universe = full_mask(g.n)
    return min(
        popcount(g.out_of_set(p)) for p in iter_subsets_of_size(universe, i)
    )


def covering_number_of_set(graphs: Iterable[Digraph], i: int) -> int:
    """``cov_i(S) = min_{G∈S} cov_i(G)`` (Def 3.6)."""
    graphs = tuple(graphs)
    if not graphs:
        raise GraphError("cov_i of an empty graph set is undefined")
    return min(covering_number(g, i) for g in graphs)


@cached_kernel(name="covering_numbers", key=iso_key)
def covering_numbers(g: Digraph) -> tuple[int, ...]:
    """The full profile ``(cov_1(G), ..., cov_n(G))``.

    Built level-by-level through :func:`_covering_number`, so a profile
    and individual ``cov_i`` queries share the same cache entries.
    """
    return tuple(_covering_number(g, i) for i in range(1, g.n + 1))


def worst_covered_set(g: Digraph, i: int) -> int:
    """A witness ``i``-set whose audience realises ``cov_i(G)`` (bitmask)."""
    _check_i(g.n, i)
    universe = full_mask(g.n)
    return min(
        iter_subsets_of_size(universe, i),
        key=lambda p: popcount(g.out_of_set(p)),
    )


def _check_i(n: int, i: int) -> None:
    if not 1 <= i <= n:
        raise GraphError(f"covering index must be in [1, n], got i={i}, n={n}")
