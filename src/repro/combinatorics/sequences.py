"""Covering-number sequences (Defs 6.6 and 6.8) and their fixed points.

The ``i``-th covering sequence of ``G`` tracks a guaranteed audience through
rounds: ``s_1 = cov_i(G)``; afterwards ``s_{k+1} = n`` once ``s_k ≥ γ_eq(G)``
(any such set dominates) and ``s_{k+1} = cov_{s_k}(G)`` otherwise.  If the
sequence reaches ``n`` after ``r`` steps, the ``r``-round FloodMin algorithm
solves ``i``-set agreement (Thms 6.7 / 6.9).

Sequences are non-decreasing (``cov_j ≥ j`` by self-loops) but may stall at a
fixed point ``cov_j(G) = j < n``; :func:`rounds_to_reach_all` returns ``None``
in that case.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import GraphError
from ..graphs.digraph import Digraph
from .covering import covering_number, covering_number_of_set
from .domination import equal_domination_number, equal_domination_number_of_set

__all__ = [
    "covering_sequence",
    "covering_sequence_of_set",
    "rounds_to_reach_all",
    "rounds_to_reach_all_of_set",
]


def covering_sequence(g: Digraph, i: int, max_rounds: int | None = None) -> list[int]:
    """The ``i``-th covering-number sequence of ``G`` (Def 6.6).

    Returns the sequence up to (and including) the first ``n`` or the first
    repeated value (a stall), truncated at ``max_rounds`` entries if given.
    """
    _check_i(g.n, i)
    gamma_eq = equal_domination_number(g)
    return _iterate(
        first=covering_number(g, i),
        step=lambda j: covering_number(g, j),
        n=g.n,
        gamma_eq=gamma_eq,
        max_rounds=max_rounds,
    )


def covering_sequence_of_set(
    graphs: Iterable[Digraph], i: int, max_rounds: int | None = None
) -> list[int]:
    """The ``i``-th covering-number sequence of a set ``S`` (Def 6.8).

    Uses the pessimistic ``min_G cov_j(G)`` step and the threshold
    ``max_G γ_eq(G)`` exactly as in the paper.
    """
    s = tuple(graphs)
    if not s:
        raise GraphError("graph set must be non-empty")
    n = s[0].n
    _check_i(n, i)
    gamma_eq = equal_domination_number_of_set(s)
    return _iterate(
        first=covering_number_of_set(s, i),
        step=lambda j: covering_number_of_set(s, j),
        n=n,
        gamma_eq=gamma_eq,
        max_rounds=max_rounds,
    )


def rounds_to_reach_all(g: Digraph, i: int) -> int | None:
    """Number of rounds for the ``i``-th covering sequence to hit ``n``.

    Returns ``None`` when the sequence stalls below ``n`` — then Thm 6.7
    gives no upper bound for ``i``-set agreement on ``↑G``.
    """
    seq = covering_sequence(g, i)
    return len(seq) if seq[-1] == g.n else None


def rounds_to_reach_all_of_set(graphs: Iterable[Digraph], i: int) -> int | None:
    """Set version of :func:`rounds_to_reach_all` (Thm 6.9)."""
    s = tuple(graphs)
    if not s:
        raise GraphError("graph set must be non-empty")
    seq = covering_sequence_of_set(s, i)
    return len(seq) if seq[-1] == s[0].n else None


def _iterate(first, step, n: int, gamma_eq: int, max_rounds: int | None) -> list[int]:
    sequence = [first]
    while sequence[-1] != n:
        if max_rounds is not None and len(sequence) >= max_rounds:
            break
        current = sequence[-1]
        nxt = n if current >= gamma_eq else step(current)
        if nxt == current:  # stalled at a sub-dominating fixed point
            break
        sequence.append(nxt)
    return sequence


def _check_i(n: int, i: int) -> None:
    if not 1 <= i <= n:
        raise GraphError(f"sequence index must be in [1, n], got i={i}, n={n}")
