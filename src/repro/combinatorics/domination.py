"""Domination and equal-domination numbers (Defs 3.1 and 3.3).

``γ(G)`` is the classical domination number (smallest dominating set).
``γ_eq(G)`` is the paper's *equal-domination number*: the smallest ``i`` such
that **every** set of ``i`` processes dominates ``G``; for a set of graphs,
``γ_eq(S) = max_{G∈S} γ_eq(G)``, so that any ``γ_eq(S)`` processes dominate
every generator simultaneously.
"""

from __future__ import annotations

from collections.abc import Iterable

from .._bitops import full_mask, iter_subsets_of_size
from ..engine.cache import cached_kernel
from ..engine.canonical import iso_key
from ..errors import GraphError
from ..graphs.digraph import Digraph
from ..graphs.dominating import domination_number

__all__ = [
    "domination_number",
    "equal_domination_number",
    "equal_domination_number_of_set",
    "worst_non_dominating_set",
]


@cached_kernel(name="equal_domination_number", key=iso_key)
def equal_domination_number(g: Digraph) -> int:
    """``γ_eq(G)``: least ``i`` with every ``i``-set dominating (Def 3.3).

    The defining predicate is monotone in ``i`` (supersets of dominating sets
    dominate), and ``i = n`` always works thanks to self-loops, so a linear
    scan terminates.
    """
    universe = full_mask(g.n)
    for i in range(1, g.n + 1):
        if all(g.dominates(p) for p in iter_subsets_of_size(universe, i)):
            return i
    raise AssertionError("unreachable: the full process set dominates")


def equal_domination_number_of_set(graphs: Iterable[Digraph]) -> int:
    """``γ_eq(S) = max_{G∈S} γ_eq(G)`` (Def 3.3)."""
    graphs = tuple(graphs)
    if not graphs:
        raise GraphError("γ_eq of an empty graph set is undefined")
    _check_same_n(graphs)
    return max(equal_domination_number(g) for g in graphs)


def worst_non_dominating_set(g: Digraph, size: int) -> int | None:
    """A ``size``-set failing to dominate ``g``, or None if all dominate.

    Witness extractor used in tests and in lower-bound certificates: the
    returned bitmask proves ``γ_eq(G) > size``.
    """
    if not 1 <= size <= g.n:
        raise GraphError(f"size must be in [1, n], got {size}")
    universe = full_mask(g.n)
    for p in iter_subsets_of_size(universe, size):
        if not g.dominates(p):
            return p
    return None


def _check_same_n(graphs: tuple[Digraph, ...]) -> None:
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise GraphError("all graphs must share the same process count")
