"""Combinatorial graph numbers behind every bound in the paper.

* Domination ``γ`` and equal-domination ``γ_eq`` (Defs 3.1, 3.3).
* Covering numbers ``cov_i`` (Def 3.6).
* Distributed domination ``γ_dist``, max-covering ``max-cov_i`` and the
  coefficients ``M_i`` (Defs 5.2, 5.3).
* Covering-number sequences (Defs 6.6, 6.8).
"""

from .covering import (
    covering_number,
    covering_number_of_set,
    covering_numbers,
    worst_covered_set,
)
from .distributed import (
    distributed_domination_number,
    joint_out_of_set,
    max_covering_coefficient,
    max_covering_number,
    max_covering_witness,
)
from .domination import (
    domination_number,
    equal_domination_number,
    equal_domination_number_of_set,
    worst_non_dominating_set,
)
from .sequences import (
    covering_sequence,
    covering_sequence_of_set,
    rounds_to_reach_all,
    rounds_to_reach_all_of_set,
)

__all__ = [
    "covering_number",
    "covering_number_of_set",
    "covering_numbers",
    "worst_covered_set",
    "distributed_domination_number",
    "joint_out_of_set",
    "max_covering_coefficient",
    "max_covering_number",
    "max_covering_witness",
    "domination_number",
    "equal_domination_number",
    "equal_domination_number_of_set",
    "worst_non_dominating_set",
    "covering_sequence",
    "covering_sequence_of_set",
    "rounds_to_reach_all",
    "rounds_to_reach_all_of_set",
]
