"""Named graph families used throughout the paper and its examples.

All families return :class:`~repro.graphs.digraph.Digraph` instances with the
implicit self-loops of the paper's model.  Directions follow the message
convention: edge ``(u, v)`` means *v hears u*.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .._bitops import bit, full_mask, mask_of
from ..errors import GraphError
from .digraph import Digraph

__all__ = [
    "FAMILY_NAMES",
    "build_family",
    "empty_graph",
    "complete_graph",
    "star",
    "union_of_stars",
    "inward_star",
    "cycle",
    "bidirectional_cycle",
    "path",
    "bidirectional_path",
    "out_tree",
    "in_tree",
    "wheel",
    "complete_bipartite",
    "tournament",
    "rotating_tournament",
    "kernel_graph",
    "figure1_star",
    "figure1_second",
    "figure2_graph",
]


#: Families addressable by name from the CLI (``--family``) and the query
#: service (``"family"`` in a request body).  A subset of this module: the
#: single-parameter constructors (plus ``union_of_stars``, the one that
#: takes centres) that make sense as a user-facing vocabulary.
FAMILY_NAMES = (
    "star", "cycle", "bidirectional_cycle", "path", "wheel",
    "out_tree", "in_tree", "tournament", "complete_graph", "empty_graph",
    "union_of_stars",
)


def build_family(
    family: str, n: int, centers: Iterable[int] | None = None
) -> Digraph:
    """Construct a named family member — the shared CLI/service entry.

    ``centers`` is only meaningful for ``union_of_stars`` (defaulting to a
    single star centred at 0) and ignored otherwise.  Unknown names and
    invalid parameters raise :class:`~repro.errors.GraphError`, so every
    front end reports the same vocabulary in its errors.
    """
    if family not in FAMILY_NAMES:
        raise GraphError(
            f"unknown family {family!r}; choose from {', '.join(FAMILY_NAMES)}"
        )
    if family == "union_of_stars":
        chosen = tuple(centers) if centers is not None else (0,)
        return union_of_stars(n, chosen)
    return globals()[family](n)


def empty_graph(n: int) -> Digraph:
    """Only self-loops: nobody hears anybody else."""
    return Digraph.empty(n)


def complete_graph(n: int) -> Digraph:
    """The clique on ``n`` processes."""
    return Digraph.complete(n)


def star(n: int, center: int = 0) -> Digraph:
    """A broadcast star: ``center`` is heard by everyone.

    This is the paper's star graph (Def 6.12 with a single centre): the
    centre's value floods the system, so ``γ(star) = 1``.
    """
    _check_member(n, center)
    rows = [0] * n
    rows[center] = full_mask(n)
    return Digraph(n, rows)


def union_of_stars(n: int, centers: Iterable[int]) -> Digraph:
    """Union of broadcast stars with the given (distinct) centres (Def 6.12)."""
    centers = tuple(centers)
    if len(set(centers)) != len(centers):
        raise GraphError(f"star centres must be distinct, got {centers!r}")
    if not centers:
        raise GraphError("at least one star centre is required")
    rows = [0] * n
    for c in centers:
        _check_member(n, c)
        rows[c] = full_mask(n)
    return Digraph(n, rows)


def inward_star(n: int, center: int = 0) -> Digraph:
    """A gather star: ``center`` hears everyone (reverse of :func:`star`)."""
    _check_member(n, center)
    rows = [bit(center) for _ in range(n)]
    return Digraph(n, rows)


def cycle(n: int) -> Digraph:
    """The directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (Sec 6.1 example)."""
    if n < 2:
        raise GraphError(f"a cycle needs at least 2 processes, got {n}")
    return Digraph.from_edges(n, [(u, (u + 1) % n) for u in range(n)])


def bidirectional_cycle(n: int) -> Digraph:
    """The ring where each process hears both neighbours."""
    if n < 2:
        raise GraphError(f"a ring needs at least 2 processes, got {n}")
    edges = [(u, (u + 1) % n) for u in range(n)]
    edges += [((u + 1) % n, u) for u in range(n)]
    return Digraph.from_edges(n, edges)


def path(n: int) -> Digraph:
    """The directed path ``0 -> 1 -> ... -> n-1``."""
    return Digraph.from_edges(n, [(u, u + 1) for u in range(n - 1)])


def bidirectional_path(n: int) -> Digraph:
    """The path with edges in both directions."""
    edges = [(u, u + 1) for u in range(n - 1)]
    edges += [(u + 1, u) for u in range(n - 1)]
    return Digraph.from_edges(n, edges)


def out_tree(n: int, branching: int = 2) -> Digraph:
    """A complete ``branching``-ary out-tree rooted at process 0.

    Messages flow from the root towards the leaves (node ``u`` is heard by its
    children ``branching*u + 1 .. branching*u + branching``).
    """
    if branching < 1:
        raise GraphError(f"branching factor must be >= 1, got {branching}")
    edges = []
    for u in range(n):
        for j in range(1, branching + 1):
            child = branching * u + j
            if child < n:
                edges.append((u, child))
    return Digraph.from_edges(n, edges)


def in_tree(n: int, branching: int = 2) -> Digraph:
    """The reverse of :func:`out_tree`: leaves feed towards the root."""
    return out_tree(n, branching).reverse()


def wheel(n: int) -> Digraph:
    """Process 0 broadcasts, the others form a directed cycle ``1..n-1``."""
    if n < 3:
        raise GraphError(f"a wheel needs at least 3 processes, got {n}")
    g = star(n, 0)
    rim = [(u, u % (n - 1) + 1) for u in range(1, n)]
    return g.with_edges(rim)


def complete_bipartite(left: Sequence[int], right: Sequence[int]) -> Digraph:
    """Every member of ``left`` is heard by every member of ``right``.

    The process universe is ``0 .. max(left+right)``; the two sides must be
    disjoint.  This is the directed analogue of Fig 3a.
    """
    left = tuple(left)
    right = tuple(right)
    if set(left) & set(right):
        raise GraphError("bipartition sides must be disjoint")
    if not left or not right:
        raise GraphError("both sides of the bipartition must be non-empty")
    n = max((*left, *right)) + 1
    right_mask = mask_of(right)
    rows = [0] * n
    for u in left:
        rows[u] = right_mask
    return Digraph(n, rows)


def tournament(n: int) -> Digraph:
    """A fixed tournament: for ``u < v`` the edge ``(u, v)`` is present.

    Tournaments generate the model Afek & Gafni showed equivalent to wait-free
    read-write shared memory (Sec 2.1).
    """
    return Digraph.from_edges(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def rotating_tournament(n: int, shift: int = 1) -> Digraph:
    """A regular tournament (odd ``n``): ``u`` beats ``u+1 .. u+(n-1)/2``."""
    if n % 2 == 0:
        raise GraphError(f"a regular rotating tournament needs odd n, got {n}")
    half = (n - 1) // 2
    edges = [
        (u, (u + shift * j) % n) for u in range(n) for j in range(1, half + 1)
    ]
    return Digraph.from_edges(n, edges)


def kernel_graph(n: int, broadcasters: Iterable[int]) -> Digraph:
    """A graph whose kernel is exactly ``broadcasters`` (each one broadcasts).

    Together with closure-above this generates the *non-empty kernel*
    Heard-Of predicate of Charron-Bost et al. (Sec 2.1).
    """
    return union_of_stars(n, broadcasters)


# ----------------------------------------------------------------------
# The concrete graphs appearing in the paper's figures
# ----------------------------------------------------------------------

def figure1_star() -> Digraph:
    """Left graph of Fig 1: the broadcast star on 4 processes (centre p1=0)."""
    return star(4, 0)


def figure1_second() -> Digraph:
    """Right graph of Fig 1: a broadcaster plus a directed triangle.

    The paper computes ``cov_2(S) = 3`` and ``γ_eq(S) = 4`` for the symmetric
    model generated by this graph, making the covering-number upper bound
    (3-set agreement, via ``i=2``) strictly better than the equal-domination
    bound (4-set).  The wheel on 4 processes — process 0 broadcasts while
    1→2→3→1 form a directed cycle — realises exactly these numbers: every
    2-set reaches at least 3 processes, while the 3-set {1,2,3} misses the
    broadcaster (whose only in-edge is its self-loop), so ``γ_eq = 4 = n``.
    """
    return wheel(4)


def figure2_graph() -> Digraph:
    """The 3-process graph of Fig 2.

    Views in the figure: p1 hears {p1, p3}, p2 hears {p1, p2}, p3 hears {p3}.
    Hence edges (3 hears nobody else): p3→p1, p1→p2.
    """
    return Digraph.from_edges(3, [(2, 0), (0, 1)])


def _check_member(n: int, p: int) -> None:
    if not 0 <= p < n:
        raise GraphError(f"process {p} out of range for n={n}")
