"""Graph operations: union, intersection, the paper's path product, powers.

The central operation is the *graph path product* (Def 6.1): ``(u, v)`` is an
edge of ``G ⊗ H`` iff there is a ``w`` with ``(u, w) ∈ G`` and ``(w, v) ∈ H``.
Because all graphs carry self-loops the product is monotone (more edges in
either factor can only add edges to the product) and ``G ⊗ H`` contains both
``G`` and ``H`` — messages can always idle one round at their source or
destination.  ``G^r`` captures who hears whom after ``r`` rounds of ``G``.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import product as cartesian_product

from .._bitops import iter_bits
from ..engine.cache import cached_kernel
from ..errors import GraphError
from .digraph import Digraph

__all__ = [
    "union",
    "intersection",
    "path_product",
    "graph_power",
    "set_product",
    "set_power",
    "transitive_closure",
]


def union(*graphs: Digraph) -> Digraph:
    """Edge-wise union of graphs over the same processes."""
    first = _check_family(graphs)
    rows = [0] * first.n
    for g in graphs:
        for u, row in enumerate(g.out_rows):
            rows[u] |= row
    return Digraph(first.n, rows)


def intersection(*graphs: Digraph) -> Digraph:
    """Edge-wise intersection (self-loops always survive)."""
    first = _check_family(graphs)
    rows = list(first.out_rows)
    for g in graphs[1:]:
        rows = [a & b for a, b in zip(rows, g.out_rows)]
    return Digraph(first.n, rows)


def path_product(g: Digraph, h: Digraph) -> Digraph:
    """The paper's graph path product ``G ⊗ H`` (Def 6.1).

    ``(u, v)`` is an edge iff some relay ``w`` satisfies ``(u, w) ∈ G`` and
    ``(w, v) ∈ H``; i.e. information flowing along ``G`` in round 1 and ``H``
    in round 2 travels exactly the edges of ``G ⊗ H``.
    """
    if g.n != h.n:
        raise GraphError(f"product of graphs over {g.n} vs {h.n} processes")
    rows = [0] * g.n
    for u in range(g.n):
        acc = 0
        for w in iter_bits(g.out_mask(u)):
            acc |= h.out_mask(w)
        rows[u] = acc
    return Digraph(g.n, rows)


def graph_power(g: Digraph, r: int) -> Digraph:
    """``G^r``: the ``r``-fold path product of ``G`` with itself (``r >= 1``).

    Memoized (kernel ``graph_power``): multi-round bounds query the same
    powers for every round count, and the persistent store makes repeated
    experiment runs skip the products entirely.
    """
    if r < 1:
        raise GraphError(f"graph power needs r >= 1, got {r}")
    if r == 1:
        return g
    return _graph_power(g, r)


@cached_kernel(
    name="graph_power",
    key=lambda g, r: (g.n, g.out_rows, r),
    version="1",
)
def _graph_power(g: Digraph, r: int) -> Digraph:
    result = g
    for _ in range(r - 1):
        result = path_product(result, g)
    return result


def set_product(s: Iterable[Digraph], t: Iterable[Digraph]) -> frozenset[Digraph]:
    """All pairwise products ``{G ⊗ H | G ∈ S, H ∈ T}``."""
    s = tuple(s)
    t = tuple(t)
    if not s or not t:
        raise GraphError("set products need non-empty graph sets")
    return frozenset(path_product(g, h) for g, h in cartesian_product(s, t))


def set_power(s: Iterable[Digraph], r: int) -> frozenset[Digraph]:
    """``S^r``: products of every length-``r`` word over ``S`` (Sec 6).

    The result has at most ``|S|**r`` graphs, deduplicated; closed-above
    multi-round bounds are computed from these generators.  Memoized
    per (graph set, r) — the remaining heavy multi-round path — so every
    round-``r`` bound over one model shares a single product sweep.
    """
    generators = frozenset(s)
    if not generators:
        raise GraphError("set power needs a non-empty graph set")
    if r < 1:
        raise GraphError(f"set power needs r >= 1, got {r}")
    if r == 1:
        return generators
    return _set_power(generators, r)


@cached_kernel(
    name="set_power",
    key=lambda generators, r: (
        tuple(sorted((g.n, g.out_rows) for g in generators)),
        r,
    ),
    version="1",
)
def _set_power(generators: frozenset[Digraph], r: int) -> frozenset[Digraph]:
    result = generators
    for _ in range(r - 1):
        result = set_product(result, generators)
    return result


def transitive_closure(g: Digraph) -> Digraph:
    """Limit of ``G^r``: who eventually hears whom if ``G`` repeats forever."""
    current = g
    while True:
        nxt = path_product(current, g)
        if nxt == current:
            return current
        current = nxt


def _check_family(graphs: tuple[Digraph, ...]) -> Digraph:
    if not graphs:
        raise GraphError("need at least one graph")
    first = graphs[0]
    for g in graphs[1:]:
        if g.n != first.n:
            raise GraphError(
                f"graphs over different process counts: {first.n} vs {g.n}"
            )
    return first
