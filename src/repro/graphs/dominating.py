"""Dominating-set solvers: the engine behind the paper's γ numbers.

A set ``P`` of processes *dominates* ``G`` when ``⋃_{p∈P} Out_G(p) = Π``
(Def 3.1; self-loops make ``P ⊆ Out(P)``).  We provide:

* :func:`minimum_dominating_set` — exact, branch-and-bound over bitmasks;
  practical well beyond the paper's example sizes (``n ≤ ~20``).
* :func:`greedy_dominating_set` — the classical ``ln n``-approximation for
  larger instances.
* :func:`domination_number` — ``γ(G)``.
* :func:`all_minimum_dominating_sets` — every optimal witness, used by the
  upper-bound algorithms, tests and benchmarks.

The exact solvers are memoized in the process-global
:data:`~repro.engine.cache.KERNEL_CACHE`: witnesses under the exact
adjacency key (they are labelling-dependent), ``γ`` itself under the
isomorphism-invariant key so an entire symmetric orbit shares one entry.
"""

from __future__ import annotations

from .._bitops import bits_tuple, full_mask, iter_bits, popcount
from ..engine.cache import cached_kernel
from ..engine.canonical import adjacency_key, iso_key
from ..errors import GraphError
from .digraph import Digraph

__all__ = [
    "minimum_dominating_set",
    "all_minimum_dominating_sets",
    "greedy_dominating_set",
    "domination_number",
    "is_dominating_set",
]


def is_dominating_set(g: Digraph, members: int) -> bool:
    """Return True iff the bitmask ``members`` dominates ``g``."""
    return g.dominates(members)


def greedy_dominating_set(g: Digraph) -> int:
    """Greedy set-cover heuristic; returns a dominating bitmask.

    At each step picks the process covering the most still-uncovered
    processes.  Guaranteed within ``1 + ln n`` of optimal.
    """
    universe = full_mask(g.n)
    covered = 0
    chosen = 0
    while covered != universe:
        best_u = -1
        best_gain = -1
        for u in range(g.n):
            gain = popcount(g.out_mask(u) & ~covered)
            if gain > best_gain:
                best_gain = gain
                best_u = u
        if best_gain == 0:  # pragma: no cover - impossible with self-loops
            raise GraphError("graph cannot be dominated")
        chosen |= 1 << best_u
        covered |= g.out_mask(best_u)
    return chosen


@cached_kernel(name="minimum_dominating_set", key=adjacency_key)
def minimum_dominating_set(g: Digraph) -> int:
    """Exact minimum dominating set (bitmask), via branch and bound.

    Branches on the uncovered process with the fewest potential dominators —
    the classical most-constrained-variable heuristic — with the greedy
    solution as the initial upper bound.
    """
    greedy = greedy_dominating_set(g)
    best = [popcount(greedy), greedy]
    _branch(g, chosen=0, covered=0, best=best)
    return best[1]


@cached_kernel(name="domination_number", key=iso_key)
def domination_number(g: Digraph) -> int:
    """``γ(G)``: size of the minimum dominating set (Def 3.1)."""
    return popcount(minimum_dominating_set(g))


def all_minimum_dominating_sets(g: Digraph) -> list[int]:
    """All dominating bitmasks of optimal size, sorted."""
    return list(_all_minimum_dominating_sets(g))


@cached_kernel(name="all_minimum_dominating_sets", key=adjacency_key)
def _all_minimum_dominating_sets(g: Digraph) -> tuple[int, ...]:
    gamma = domination_number(g)
    universe = full_mask(g.n)
    from .._bitops import iter_subsets_of_size

    return tuple(
        sorted(
            members
            for members in iter_subsets_of_size(universe, gamma)
            if g.dominates(members)
        )
    )


def _branch(g: Digraph, chosen: int, covered: int, best: list) -> None:
    universe = full_mask(g.n)
    size = popcount(chosen)
    if covered == universe:
        if size < best[0]:
            best[0] = size
            best[1] = chosen
        return
    if size + 1 >= best[0]:
        # Even finishing the cover with a single extra pick would only tie
        # the incumbent, never strictly improve it.
        return
    # Pick the uncovered process with the fewest candidate dominators.
    uncovered = universe & ~covered
    target = -1
    target_options: tuple[int, ...] = ()
    target_count = g.n + 1
    for v in iter_bits(uncovered):
        options = g.in_mask(v)
        count = popcount(options)
        if count < target_count:
            target_count = count
            target = v
            target_options = bits_tuple(options)
            if count == 1:
                break
    assert target >= 0
    # Order candidates by coverage gain (descending) for faster incumbents.
    candidates = sorted(
        target_options,
        key=lambda u: popcount(g.out_mask(u) & ~covered),
        reverse=True,
    )
    for u in candidates:
        _branch(g, chosen | (1 << u), covered | g.out_mask(u), best)
