"""Directed-graph substrate: the communication graphs of the paper.

Public surface of the :mod:`repro.graphs` package:

* :class:`Digraph` — immutable digraph with mandatory self-loops.
* :mod:`~repro.graphs.families` — stars, cycles, trees, tournaments, the
  figure graphs.
* :mod:`~repro.graphs.operations` — union/intersection and the paper's path
  product ``⊗`` (Def 6.1).
* :mod:`~repro.graphs.closure` — upward closures ``↑G`` (Def 2.3).
* :mod:`~repro.graphs.symmetry` — symmetric closures ``Sym(S)`` (Def 2.4).
* :mod:`~repro.graphs.dominating` — exact/greedy dominating-set solvers.
* :mod:`~repro.graphs.properties` — kernel / non-split / tournament tests.
* :mod:`~repro.graphs.generators` — randomised instances for tests/benches.
"""

from .digraph import Digraph
from .families import (
    FAMILY_NAMES,
    bidirectional_cycle,
    bidirectional_path,
    build_family,
    complete_bipartite,
    complete_graph,
    cycle,
    empty_graph,
    figure1_second,
    figure1_star,
    figure2_graph,
    in_tree,
    inward_star,
    kernel_graph,
    out_tree,
    path,
    rotating_tournament,
    star,
    tournament,
    union_of_stars,
    wheel,
)
from .closure import (
    in_model,
    in_upward_closure,
    iter_model_graphs,
    iter_upward_closure,
    minimal_generators,
    missing_edges,
    sample_superset,
    upward_closure_size,
)
from .dominating import (
    all_minimum_dominating_sets,
    domination_number,
    greedy_dominating_set,
    is_dominating_set,
    minimum_dominating_set,
)
from .generators import (
    iter_all_digraphs,
    random_digraph,
    random_graph_set,
    random_spanning_star_graph,
    random_tournament,
    random_union_of_stars,
)
from .metrics import (
    diameter,
    distance,
    distances_from,
    eccentricity,
    flooding_rounds,
    radius,
)
from .operations import (
    graph_power,
    intersection,
    path_product,
    set_power,
    set_product,
    transitive_closure,
    union,
)
from .properties import (
    contains_spanning_star,
    has_nonempty_kernel,
    is_non_split,
    is_strongly_connected,
    is_tournament,
    is_weakly_connected,
    kernel,
    min_in_degree,
    min_out_degree,
    sink_processes,
    source_processes,
)
from .symmetry import (
    canonical_form,
    is_symmetric,
    iter_isomorphism_classes,
    orbit,
    symmetric_closure,
)

__all__ = [
    "Digraph",
    # families
    "FAMILY_NAMES",
    "bidirectional_cycle",
    "build_family",
    "bidirectional_path",
    "complete_bipartite",
    "complete_graph",
    "cycle",
    "empty_graph",
    "figure1_second",
    "figure1_star",
    "figure2_graph",
    "in_tree",
    "inward_star",
    "kernel_graph",
    "out_tree",
    "path",
    "rotating_tournament",
    "star",
    "tournament",
    "union_of_stars",
    "wheel",
    # closure
    "in_model",
    "in_upward_closure",
    "iter_model_graphs",
    "iter_upward_closure",
    "minimal_generators",
    "missing_edges",
    "sample_superset",
    "upward_closure_size",
    # dominating
    "all_minimum_dominating_sets",
    "domination_number",
    "greedy_dominating_set",
    "is_dominating_set",
    "minimum_dominating_set",
    # generators
    "iter_all_digraphs",
    "random_digraph",
    "random_graph_set",
    "random_spanning_star_graph",
    "random_tournament",
    "random_union_of_stars",
    # metrics
    "diameter",
    "distance",
    "distances_from",
    "eccentricity",
    "flooding_rounds",
    "radius",
    # operations
    "graph_power",
    "intersection",
    "path_product",
    "set_power",
    "set_product",
    "transitive_closure",
    "union",
    # properties
    "contains_spanning_star",
    "has_nonempty_kernel",
    "is_non_split",
    "is_strongly_connected",
    "is_tournament",
    "is_weakly_connected",
    "kernel",
    "min_in_degree",
    "min_out_degree",
    "sink_processes",
    "source_processes",
    # symmetry
    "canonical_form",
    "is_symmetric",
    "iter_isomorphism_classes",
    "orbit",
    "symmetric_closure",
]
