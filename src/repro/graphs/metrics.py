"""Distance metrics on communication graphs.

Distances here follow the message direction: ``dist(u, v)`` is the number
of rounds of the fixed graph ``G`` needed for ``u``'s value to reach ``v``
(0 for ``u = v``, thanks to self-loops it is also the path length in the
ordinary sense).  These quantities connect to the paper's multi-round
machinery:

* the **eccentricity** of ``u`` bounds when everyone has heard ``u``;
* the **radius** is the best achievable single-source flooding time, a
  lower bound companion to the covering-sequence rounds of Thm 6.7;
* the **diameter** is the number of rounds after which ``G^r`` is the
  clique (for strongly connected ``G``), i.e. FloodMin reaches consensus.
"""

from __future__ import annotations

from .._bitops import iter_bits
from ..engine.cache import cached_kernel
from ..engine.canonical import adjacency_key, iso_key
from ..errors import GraphError
from .digraph import Digraph

__all__ = [
    "distances_from",
    "distance",
    "eccentricity",
    "radius",
    "diameter",
    "flooding_rounds",
]


def distances_from(g: Digraph, source: int) -> list[int | None]:
    """BFS distances from ``source`` along message direction.

    ``result[v]`` is the least ``r`` with ``v ∈ Out_{G^r}(source)``
    (``0`` for the source itself); ``None`` when ``v`` never hears
    ``source``.
    """
    _check_member(g, source)
    return list(_distances_from(g, source))


@cached_kernel(
    name="distances_from", key=lambda g, source: (adjacency_key(g), source)
)
def _distances_from(g: Digraph, source: int) -> tuple[int | None, ...]:
    result: list[int | None] = [None] * g.n
    reached = 1 << source
    frontier = reached
    level = 0
    result[source] = 0
    while frontier:
        new = 0
        for u in iter_bits(frontier):
            new |= g.out_mask(u)
        new &= ~reached
        level += 1
        for v in iter_bits(new):
            result[v] = level
        reached |= new
        frontier = new
    return tuple(result)


def distance(g: Digraph, source: int, target: int) -> int | None:
    """Rounds for ``source``'s value to reach ``target`` (None if never)."""
    _check_member(g, target)
    return distances_from(g, source)[target]


def eccentricity(g: Digraph, source: int) -> int | None:
    """Rounds until *everyone* heard ``source`` (None if unreachable)."""
    _check_member(g, source)
    dists = _distances_from(g, source)
    if any(d is None for d in dists):
        return None
    return max(d for d in dists if d is not None)


@cached_kernel(name="radius", key=iso_key)
def radius(g: Digraph) -> int | None:
    """Minimum eccentricity: the best single broadcaster's flooding time."""
    eccs = [eccentricity(g, u) for u in g.processes()]
    finite = [e for e in eccs if e is not None]
    return min(finite) if finite else None


@cached_kernel(name="diameter", key=iso_key)
def diameter(g: Digraph) -> int | None:
    """Maximum eccentricity; ``G^diameter`` is the clique when finite."""
    eccs = [eccentricity(g, u) for u in g.processes()]
    if any(e is None for e in eccs):
        return None
    return max(e for e in eccs if e is not None)


def flooding_rounds(g: Digraph) -> int | None:
    """Rounds of fixed ``G`` until every process heard every process.

    Equals :func:`diameter`; exposed under the operational name because it
    is the exact round count after which FloodMin solves consensus on the
    *fixed-graph* model ``{G}^ω`` (and an upper bound for ``↑G`` since
    extra edges only help).
    """
    return diameter(g)


def _check_member(g: Digraph, p: int) -> None:
    if not 0 <= p < g.n:
        raise GraphError(f"process {p} out of range for n={g.n}")
