"""Random graph generators for stress tests, property tests and benchmarks.

All generators take an explicit :class:`random.Random` instance — no hidden
global state — and return paper-conformant graphs (self-loops present).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from .._bitops import bit
from ..errors import GraphError
from .digraph import Digraph
from .families import union_of_stars

__all__ = [
    "random_digraph",
    "random_spanning_star_graph",
    "random_union_of_stars",
    "random_tournament",
    "random_graph_set",
    "iter_all_digraphs",
]


def random_digraph(n: int, rng: random.Random, edge_probability: float = 0.5) -> Digraph:
    """Erdős–Rényi digraph: each non-loop edge present independently."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rows = [0] * n
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < edge_probability:
                rows[u] |= bit(v)
    return Digraph(n, rows)


def random_spanning_star_graph(
    n: int, rng: random.Random, edge_probability: float = 0.25
) -> Digraph:
    """A random graph guaranteed to contain a spanning (broadcast) star."""
    center = rng.randrange(n)
    base = random_digraph(n, rng, edge_probability)
    return base.with_edges((center, v) for v in range(n))


def random_union_of_stars(n: int, s: int, rng: random.Random) -> Digraph:
    """Union of ``s`` broadcast stars with distinct random centres (Def 6.12)."""
    if not 1 <= s <= n:
        raise GraphError(f"need 1 <= s <= n, got s={s}, n={n}")
    centers = rng.sample(range(n), s)
    return union_of_stars(n, centers)


def random_tournament(n: int, rng: random.Random) -> Digraph:
    """Uniformly random tournament: each pair oriented by a coin flip."""
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            edges.append((u, v) if rng.random() < 0.5 else (v, u))
    return Digraph.from_edges(n, edges)


def random_graph_set(
    n: int,
    count: int,
    rng: random.Random,
    edge_probability: float = 0.4,
) -> frozenset[Digraph]:
    """A set of ``count`` distinct random graphs (model generators)."""
    if count < 1:
        raise GraphError(f"need count >= 1, got {count}")
    graphs: set[Digraph] = set()
    attempts = 0
    while len(graphs) < count:
        graphs.add(random_digraph(n, rng, edge_probability))
        attempts += 1
        if attempts > 100 * count:
            raise GraphError(
                f"could not draw {count} distinct graphs on n={n}; "
                "the space is too small"
            )
    return frozenset(graphs)


def iter_all_digraphs(n: int) -> Iterator[Digraph]:
    """Every digraph on ``n`` processes — ``2**(n(n-1))`` of them.

    Only sensible for ``n <= 3`` (64 graphs) or ``n = 4`` (4096 graphs);
    used by the exhaustive solvability experiments.
    """
    slots = [(u, v) for u in range(n) for v in range(n) if u != v]
    for code in range(1 << len(slots)):
        edges = [slots[i] for i in range(len(slots)) if code >> i & 1]
        yield Digraph.from_edges(n, edges)
