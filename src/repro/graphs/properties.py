"""Structural graph predicates used by the paper's example models (Sec 2.1).

These are the "good things that must happen at every round" behind classical
oblivious models: a non-empty kernel (someone broadcast), the non-split
property (every pair shares an informer), tournaments, strong connectivity.
"""

from __future__ import annotations

from .._bitops import full_mask, iter_bits, popcount
from .digraph import Digraph

__all__ = [
    "kernel",
    "has_nonempty_kernel",
    "is_non_split",
    "is_tournament",
    "is_strongly_connected",
    "is_weakly_connected",
    "contains_spanning_star",
    "source_processes",
    "sink_processes",
    "min_out_degree",
    "min_in_degree",
]


def kernel(g: Digraph) -> int:
    """Bitmask of processes heard by everyone (the graph's kernel)."""
    universe = full_mask(g.n)
    mask = 0
    for u in range(g.n):
        if g.out_mask(u) == universe:
            mask |= 1 << u
    return mask


def has_nonempty_kernel(g: Digraph) -> bool:
    """True iff at least one process broadcasts (non-empty kernel predicate)."""
    return kernel(g) != 0


def is_non_split(g: Digraph) -> bool:
    """True iff every pair of processes hears from a common process."""
    for v in range(g.n):
        for w in range(v + 1, g.n):
            if g.in_mask(v) & g.in_mask(w) == 0:
                return False
    return True


def is_tournament(g: Digraph) -> bool:
    """True iff every pair is joined by exactly one directed (non-loop) edge."""
    for u in range(g.n):
        for v in range(u + 1, g.n):
            if g.has_edge(u, v) == g.has_edge(v, u):
                return False
    return True


def is_strongly_connected(g: Digraph) -> bool:
    """True iff every process eventually hears every other (Tarjan-free BFS)."""
    universe = full_mask(g.n)
    for start in range(g.n):
        reached = 1 << start
        frontier = reached
        while frontier:
            new = 0
            for u in iter_bits(frontier):
                new |= g.out_mask(u)
            frontier = new & ~reached
            reached |= new
        if reached != universe:
            return False
    return True


def is_weakly_connected(g: Digraph) -> bool:
    """True iff the underlying undirected graph is connected."""
    sym_rows = [g.out_mask(u) | g.in_mask(u) for u in range(g.n)]
    reached = 1
    frontier = 1
    while frontier:
        new = 0
        for u in iter_bits(frontier):
            new |= sym_rows[u]
        frontier = new & ~reached
        reached |= new
    return reached == full_mask(g.n)


def contains_spanning_star(g: Digraph) -> bool:
    """True iff some process is heard by everyone — alias of kernel test."""
    return has_nonempty_kernel(g)


def source_processes(g: Digraph) -> int:
    """Bitmask of processes that hear nobody but themselves."""
    mask = 0
    for v in range(g.n):
        if popcount(g.in_mask(v)) == 1:
            mask |= 1 << v
    return mask


def sink_processes(g: Digraph) -> int:
    """Bitmask of processes heard by nobody but themselves."""
    mask = 0
    for u in range(g.n):
        if popcount(g.out_mask(u)) == 1:
            mask |= 1 << u
    return mask


def min_out_degree(g: Digraph) -> int:
    """Smallest out-degree (self-loop included)."""
    return min(popcount(row) for row in g.out_rows)


def min_in_degree(g: Digraph) -> int:
    """Smallest in-degree (self-loop included)."""
    return min(popcount(g.in_mask(v)) for v in range(g.n))
