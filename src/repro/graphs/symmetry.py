"""Symmetric closures of graph sets (Def 2.4).

A closed-above model is *symmetric* when its generator set is closed under
process permutations: ``Sym(S) = {π(G) | G ∈ S, π a permutation of Π}``.
Symmetric models capture safety properties that do not care about identities
("there is a ring", not "this ring").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import permutations

from ..engine.canonical import intern_graph
from ..errors import GraphError
from .digraph import Digraph

__all__ = [
    "symmetric_closure",
    "orbit",
    "canonical_form",
    "is_symmetric",
    "iter_isomorphism_classes",
]


def orbit(g: Digraph) -> frozenset[Digraph]:
    """All relabellings ``{π(G)}`` of a graph (its isomorphism orbit).

    Exhaustive over the ``n!`` permutations; intended for the small process
    counts the paper's examples use (``n ≤ 8`` is comfortable).  Members are
    interned (:func:`repro.engine.canonical.intern_graph`), so the orbits
    and symmetric closures that every model/table rebuilds share one object
    per distinct graph — and one kernel-cache line.
    """
    return frozenset(
        intern_graph(g.permute(p)) for p in permutations(range(g.n))
    )


def symmetric_closure(graphs: Iterable[Digraph]) -> frozenset[Digraph]:
    """``Sym(S)``: union of the orbits of every generator (Def 2.4)."""
    graphs = tuple(graphs)
    if not graphs:
        raise GraphError("need at least one generator")
    n = graphs[0].n
    if any(g.n != n for g in graphs):
        raise GraphError("all generators must share the same process count")
    closed: set[Digraph] = set()
    for g in graphs:
        closed.update(orbit(g))
    return frozenset(closed)


def is_symmetric(graphs: Iterable[Digraph]) -> bool:
    """Return True iff the set equals its symmetric closure."""
    graphs = frozenset(graphs)
    return graphs == symmetric_closure(graphs)


def canonical_form(g: Digraph) -> Digraph:
    """A canonical representative of the isomorphism orbit of ``g``.

    Defined as the ⊑-least relabelling under the stable Digraph order; two
    graphs are isomorphic iff their canonical forms are equal.
    """
    return min(orbit(g))


def iter_isomorphism_classes(graphs: Iterable[Digraph]) -> Iterator[Digraph]:
    """Yield one canonical representative per isomorphism class."""
    seen: set[Digraph] = set()
    for g in graphs:
        canon = canonical_form(g)
        if canon not in seen:
            seen.add(canon)
            yield canon
