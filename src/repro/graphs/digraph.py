"""Immutable directed communication graphs.

A :class:`Digraph` is the paper's communication graph (Sec 2.1): nodes are the
processes ``0 .. n-1`` and an edge ``(u, v)`` means that, at the round the
graph describes, a message sent by ``u`` is delivered to ``v``.

Following the paper, **every graph carries all self-loops**: a process always
hears from itself ("Note that the outgoing neighbors of a set S contains S --
that is, we assume self-loop", Def 3.1, and the product of Def 6.1 requires
auto-loops).  The constructor silently adds them so that all graph families,
random generators and operations stay inside the paper's graph universe.

Adjacency is stored as a tuple of integer bitmasks, one *out-row* per process:
bit ``v`` of ``out[u]`` is set iff ``(u, v)`` is an edge.  This makes the
combinatorial numbers of the paper (domination, covering, ...) reduce to
popcounts over subset enumerations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from functools import cached_property

from .._bitops import (
    bit,
    bits_tuple,
    full_mask,
    is_subset,
    iter_bits,
    mask_of,
    popcount,
)
from ..errors import GraphError, ProcessMismatchError

__all__ = ["Digraph"]


class Digraph:
    """An immutable directed graph over processes ``0 .. n-1`` with self-loops.

    Parameters
    ----------
    n:
        Number of processes; must be positive.
    out_rows:
        Iterable of ``n`` bitmasks; row ``u`` holds the out-neighbours of
        ``u``.  Self-loops are added automatically.  Alternatively use
        :meth:`from_edges`.

    Examples
    --------
    >>> g = Digraph.from_edges(3, [(0, 1), (1, 2)])
    >>> sorted(g.edges())
    [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]
    >>> g.out_mask(0)
    3
    """

    __slots__ = ("_n", "_out", "_hash", "__dict__")

    def __init__(self, n: int, out_rows: Iterable[int]):
        if n <= 0:
            raise GraphError(f"a graph needs at least one process, got n={n}")
        rows = tuple(out_rows)
        if len(rows) != n:
            raise GraphError(f"expected {n} out-rows, got {len(rows)}")
        universe = full_mask(n)
        fixed = []
        for u, row in enumerate(rows):
            if row < 0 or not is_subset(row, universe):
                raise GraphError(
                    f"out-row of process {u} ({row:#x}) leaves the universe of {n} processes"
                )
            fixed.append(row | bit(u))
        self._n = n
        self._out = tuple(fixed)
        self._hash = hash((n, self._out))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Digraph":
        """Build a graph from an edge list (self-loops added automatically)."""
        rows = [0] * n
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            rows[u] |= bit(v)
        return cls(n, rows)

    @classmethod
    def empty(cls, n: int) -> "Digraph":
        """The graph with only self-loops (no process hears anyone else)."""
        return cls(n, [0] * n)

    @classmethod
    def complete(cls, n: int) -> "Digraph":
        """The clique: every process hears every process."""
        universe = full_mask(n)
        return cls(n, [universe] * n)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def out_rows(self) -> tuple[int, ...]:
        """Out-neighbour bitmask of each process (row ``u`` = ``Out(u)``)."""
        return self._out

    def processes(self) -> range:
        """Iterate over process ids."""
        return range(self._n)

    def out_mask(self, u: int) -> int:
        """Bitmask of ``Out(u)``: processes that hear ``u`` (incl. ``u``)."""
        return self._out[u]

    @cached_property
    def _in(self) -> tuple[int, ...]:
        rows = [0] * self._n
        for u, out in enumerate(self._out):
            for v in iter_bits(out):
                rows[v] |= bit(u)
        return tuple(rows)

    def in_mask(self, v: int) -> int:
        """Bitmask of ``In(v)``: processes ``v`` hears from (incl. ``v``)."""
        return self._in[v]

    def out_neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted tuple of processes hearing ``u``."""
        return bits_tuple(self._out[u])

    def in_neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of processes heard by ``v``."""
        return bits_tuple(self._in[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Return True iff ``(u, v)`` is an edge (messages from u reach v)."""
        return bool(self._out[u] >> v & 1)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges, self-loops included."""
        for u, row in enumerate(self._out):
            for v in iter_bits(row):
                yield (u, v)

    def proper_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over non-loop edges."""
        for u, v in self.edges():
            if u != v:
                yield (u, v)

    @cached_property
    def edge_count(self) -> int:
        """Total number of edges, self-loops included."""
        return sum(popcount(row) for row in self._out)

    @property
    def proper_edge_count(self) -> int:
        """Number of non-loop edges."""
        return self.edge_count - self._n

    # ------------------------------------------------------------------
    # Set-wise neighbourhoods (the primitives behind all paper numbers)
    # ------------------------------------------------------------------
    def out_of_set(self, members: int) -> int:
        """Bitmask of processes hearing at least one member of ``members``.

        This is the paper's ``Out_G(P)`` — it always contains ``P`` itself
        because of self-loops.
        """
        heard = 0
        for u in iter_bits(members):
            heard |= self._out[u]
        return heard

    def in_of_set(self, members: int) -> int:
        """Bitmask of processes heard by at least one member of ``members``."""
        sources = 0
        for v in iter_bits(members):
            sources |= self._in[v]
        return sources

    def dominates(self, members: int) -> bool:
        """Return True iff the process set ``members`` dominates the graph."""
        return self.out_of_set(members) == full_mask(self._n)

    # ------------------------------------------------------------------
    # Structural relations
    # ------------------------------------------------------------------
    def is_subgraph_of(self, other: "Digraph") -> bool:
        """Return True iff this graph's edges are all edges of ``other``."""
        self._check_same_processes(other)
        return all(is_subset(a, b) for a, b in zip(self._out, other._out))

    def contains(self, other: "Digraph") -> bool:
        """Return True iff ``other`` is a subgraph of this graph."""
        return other.is_subgraph_of(self)

    def _check_same_processes(self, other: "Digraph") -> None:
        if self._n != other._n:
            raise ProcessMismatchError(
                f"graphs over different process counts: {self._n} vs {other._n}"
            )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_edges(self, edges: Iterable[tuple[int, int]]) -> "Digraph":
        """Return a copy with the given extra edges."""
        rows = list(self._out)
        for u, v in edges:
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={self._n}")
            rows[u] |= bit(v)
        return Digraph(self._n, rows)

    def without_edges(self, edges: Iterable[tuple[int, int]]) -> "Digraph":
        """Return a copy lacking the given edges (self-loops are kept)."""
        rows = list(self._out)
        for u, v in edges:
            if u == v:
                continue  # self-loops are part of the model and cannot go
            rows[u] &= ~bit(v)
        return Digraph(self._n, rows)

    def reverse(self) -> "Digraph":
        """Return the graph with every edge reversed."""
        return Digraph(self._n, self._in)

    def permute(self, perm: Iterable[int]) -> "Digraph":
        """Relabel processes: ``perm[i]`` is the new name of process ``i``.

        This realises the paper's symmetric-model permutations (Def 2.4):
        ``(u, v)`` is an edge of the result iff ``(perm^-1(u), perm^-1(v))``
        is an edge of ``self``.
        """
        p = tuple(perm)
        if sorted(p) != list(range(self._n)):
            raise GraphError(f"{p!r} is not a permutation of 0..{self._n - 1}")
        rows = [0] * self._n
        for u, row in enumerate(self._out):
            new_row = 0
            for v in iter_bits(row):
                new_row |= bit(p[v])
            rows[p[u]] = new_row
        return Digraph(self._n, rows)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self._n == other._n and self._out == other._out

    def __lt__(self, other: "Digraph") -> bool:
        """Arbitrary-but-stable total order, used for canonical sorting."""
        if not isinstance(other, Digraph):
            return NotImplemented
        return (self._n, self._out) < (other._n, other._out)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        edges = sorted(self.proper_edges())
        return f"Digraph(n={self._n}, edges={edges})"

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (self-loops included)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.processes())
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Digraph":
        """Import from a networkx digraph with integer nodes ``0..n-1``."""
        n = g.number_of_nodes()
        if sorted(g.nodes()) != list(range(n)):
            raise GraphError("networkx graph nodes must be exactly 0..n-1")
        return cls.from_edges(n, g.edges())
